package optimize

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"diversify/internal/diversity"
	"diversify/internal/rng"
)

// Panic isolation: a candidate whose evaluation panics on every attempt
// is quarantined — scored infeasible, cached, excluded from extraction —
// instead of crashing the process or deadlocking the worker pool.
func TestPanicQuarantinesCandidate(t *testing.T) {
	p := testProblem(3)
	p.normalize()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	poison := Candidate{A: diversity.NewAssignment(), Rot: -1}
	p.Options[0].Apply(poison.A)
	poisonFP := poison.fingerprint(ev.rotFPs)
	ev.repHook = func(c Candidate, rep int) {
		if c.fingerprint(ev.rotFPs) == poisonFP {
			panic("injected evaluation fault")
		}
	}
	if _, err := ev.Score(p.baseCand()); err != nil {
		t.Fatalf("healthy candidate errored: %v", err)
	}
	s, err := ev.Score(poison)
	if err != nil {
		t.Fatalf("poisoned candidate returned error instead of quarantine: %v", err)
	}
	if !s.Quarantined || s.Value != quarantineValue {
		t.Fatalf("poisoned candidate not quarantined: %+v", s)
	}
	if ev.quarantined != 1 {
		t.Fatalf("quarantined counter = %d, want 1", ev.quarantined)
	}
	// The workers' campaigns were torn down mid-panic; the next healthy
	// candidate must rebuild and still score bit-identically to a fresh
	// evaluator that never saw a panic (CRN survives the teardown).
	healthy := Candidate{A: p.base(), Rot: -1}
	p.Options[1].Apply(healthy.A)
	after, err := ev.Score(healthy)
	if err != nil {
		t.Fatalf("evaluation after quarantine errored: %v", err)
	}
	fresh, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Score(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if after != want {
		t.Fatalf("healthy score diverged after a quarantine:\n got %+v\nwant %+v", after, want)
	}
	// Extraction never surfaces the quarantined candidate.
	if _, bestC, _ := ev.bestFeasible(p.Budget); bestC.A != nil {
		if bestC.A.Fingerprint() == poison.A.Fingerprint() {
			t.Fatal("bestFeasible returned a quarantined candidate")
		}
	}
	for _, pt := range paretoFront(&p, ev) {
		if pt.Fingerprint == poisonFP {
			t.Fatal("pareto front contains a quarantined candidate")
		}
	}
}

// A transient panic (fails once, then recovers) is retried with the same
// replication stream seed, so the final score is byte-identical to an
// undisturbed evaluation — common random numbers survive the retry path.
func TestPanicRetryPreservesCRN(t *testing.T) {
	p := testProblem(5)
	p.normalize()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	clean, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Score(p.baseCand())
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	faulty.repHook = func(c Candidate, rep int) {
		// Panic exactly once, on the first attempt of replication 2.
		if rep == 2 && fired.Add(1) == 1 {
			panic("transient fault")
		}
	}
	got, err := faulty.Score(p.baseCand())
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() < 2 {
		t.Fatalf("fault hook fired %d times, want the retry to re-run replication 2", fired.Load())
	}
	if got != want {
		t.Fatalf("transient panic changed the score:\n got %+v\nwant %+v", got, want)
	}
	if faulty.quarantined != 0 {
		t.Fatalf("transient panic quarantined the candidate (counter %d)", faulty.quarantined)
	}
}

// With several candidates poisoned, a full evaluation sweep still visits
// every candidate and quarantines exactly the poisoned ones.
func TestPanicIsolationSweep(t *testing.T) {
	p := testProblem(7)
	p.Reps = 4
	p.normalize()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	ev.repHook = func(c Candidate, rep int) {
		if c.A.Len()%2 == 1 { // every odd-sized overlay panics
			panic(fmt.Sprintf("poisoned overlay of %d decisions", c.A.Len()))
		}
	}
	cand := Candidate{A: p.base(), Rot: -1}
	quar := 0
	for i := 0; i < 6 && i < len(p.Options); i++ {
		p.Options[i].Apply(cand.A)
		s, err := ev.Score(cand)
		if err != nil {
			t.Fatalf("option %d: %v", i, err)
		}
		if s.Quarantined {
			quar++
		} else if s.PSuccess < 0 || s.PSuccess > 1 {
			t.Fatalf("option %d: implausible healthy score %+v", i, s)
		}
	}
	if quar == 0 || quar != ev.quarantined {
		t.Fatalf("sweep quarantined %d candidates (counter %d), want a consistent nonzero count", quar, ev.quarantined)
	}
}

// Cancelling the context at an arbitrary replication boundary must
// still yield a valid, feasible, within-budget incumbent (never worse
// than the baseline, which is evaluated before the search starts) —
// for every strategy. The fault-injection hook cancels after the k-th
// replication attempt, sweeping k across the whole run.
func TestCancelAtRandomPointsYieldsFeasibleIncumbent(t *testing.T) {
	for si, name := range []string{"greedy", "anneal", "genetic", "portfolio", "pareto"} {
		o, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(0xC0FFEE + si))
		for trial := 0; trial < 4; trial++ {
			p := testProblem(uint64(11 + trial))
			p.Iterations = 10
			limit := int64(1 + r.Intn(40*p.Reps))
			ctx, cancel := context.WithCancel(context.Background())
			var calls atomic.Int64
			p.repHook = func(Candidate, int) {
				if calls.Add(1) == limit {
					cancel()
				}
			}
			res, err := RunContext(ctx, p, o)
			cancel()
			if err != nil {
				// The only unsalvageable window: cancellation before the
				// baseline evaluation finished — nothing was measured yet.
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s trial %d: %v", name, trial, err)
				}
				if limit > int64(p.Reps) {
					t.Fatalf("%s trial %d: hard failure after the baseline completed (limit %d > reps %d)",
						name, trial, limit, p.Reps)
				}
				continue
			}
			if res.BestAssignment == nil {
				t.Fatalf("%s trial %d: nil best assignment", name, trial)
			}
			if res.Best.Cost > p.Budget+budgetEps {
				t.Fatalf("%s trial %d: best cost %.2f over budget %.2f", name, trial, res.Best.Cost, p.Budget)
			}
			if res.Best.Quarantined {
				t.Fatalf("%s trial %d: quarantined incumbent", name, trial)
			}
			if res.Best.Value > res.Baseline.Value {
				t.Fatalf("%s trial %d: best %.4f worse than baseline %.4f", name, trial, res.Best.Value, res.Baseline.Value)
			}
			if res.Degraded != "" && (res.Random != Score{}) {
				t.Fatalf("%s trial %d: degraded run evaluated the random baseline", name, trial)
			}
			for i, pt := range res.Pareto {
				if pt.Cost > p.Budget+budgetEps {
					t.Fatalf("%s trial %d: front point %d over budget", name, trial, i)
				}
			}
		}
	}
}

// A context that is already dead fails fast with its error: with no
// baseline evaluated there is no incumbent to degrade to.
func TestRunContextDeadDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	o, _ := ByName("greedy")
	if _, err := RunContext(ctx, testProblem(1), o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// An undisturbed RunContext must be byte-identical to Run — the context
// plumbing adds no draws and no reordering.
func TestRunContextMatchesRun(t *testing.T) {
	o, _ := ByName("anneal")
	a, err := Run(testProblem(21), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), testProblem(21), o)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("RunContext diverged from Run on the same problem")
	}
}
