package optimize

import (
	"testing"
	"time"

	"diversify/internal/telemetry"
)

// countingSink is a minimal live sink: one atomic-free counter bump per
// event, so the bench measures the emission machinery, not a consumer.
type countingSink struct{ n int }

func (s *countingSink) Emit(telemetry.Event) { s.n++ }

// BenchmarkEvalCacheInstrumented is BenchmarkEvalCache with a sink
// attached: the memoized path emits nothing, so the contrast with the
// bare bench isolates what a live sink costs cache hits (nothing).
func BenchmarkEvalCacheInstrumented(b *testing.B) {
	p := benchProblem()
	p.normalize()
	if err := p.validate(); err != nil {
		b.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		b.Fatal(err)
	}
	ev.sink = &countingSink{}
	ev.started = time.Now()
	cand := Candidate{A: p.base(), Rot: -1}
	if _, err := ev.Score(cand); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Score(cand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalMissInstrumented is BenchmarkEvalMiss with a sink
// attached: each miss pays one clock pair and one EvaluationBatch
// emission on top of the simulation itself.
func BenchmarkEvalMissInstrumented(b *testing.B) {
	p := benchProblem()
	p.normalize()
	if err := p.validate(); err != nil {
		b.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		b.Fatal(err)
	}
	ev.sink = &countingSink{}
	ev.started = time.Now()
	cand := Candidate{A: p.base(), Rot: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delete(ev.cache, cand.fingerprint(ev.rotFPs))
		ev.archive = ev.archive[:0]
		if _, err := ev.Score(cand); err != nil {
			b.Fatal(err)
		}
	}
}
