package optimize

import (
	"context"
	"fmt"

	"diversify/internal/rng"
)

// Portfolio chains the three base strategies: a greedy marginal-gain
// pass maps the terrain, then simulated annealing and the genetic search
// both start FROM the greedy incumbent instead of the empty overlay.
// Greedy is cheap and reliably finds a good basin; the stochastic
// searches then spend their iterations escaping its local optimum rather
// than rediscovering it. All three share one evaluator (and so one
// fingerprint cache and one archive), which is also what makes the final
// extraction a best-of-portfolio: Run picks the best feasible candidate
// and the Pareto front over everything any stage evaluated.
type Portfolio struct {
	// Anneal and Genetic optionally tune the seeded stages; zero values
	// use the stage defaults.
	Anneal  Anneal
	Genetic Genetic
}

// Name implements Optimizer.
func (*Portfolio) Name() string { return "portfolio" }

// Search implements Optimizer. Each stage draws from its own role-keyed
// stream, so the portfolio is deterministic for a given seed and its
// stages do not perturb one another's draws. A cancelled context stops
// the chain after the current stage's partial trace — everything the
// earlier stages evaluated stays in the shared archive.
//
//diversify:det-root seeded search entry point: same seed, same trace
func (pf *Portfolio) Search(ctx context.Context, p *Problem, ev *Evaluator, _ *rng.Rand) ([]TraceStep, error) {
	var trace []TraceStep
	appendStage := func(stage string, steps []TraceStep) {
		for _, s := range steps {
			s.Action = stage + ": " + s.Action
			s.Iter = len(trace)
			trace = append(trace, s)
		}
	}
	greedy := &Greedy{}
	gSteps, err := greedy.Search(ctx, p, ev, newSearchRand(p.Seed, "portfolio-greedy"))
	appendStage("greedy", gSteps)
	if err != nil {
		return trace, err
	}

	// Seed the stochastic stages from the best feasible candidate so far
	// (the greedy incumbent — placement AND schedule — or the baseline
	// when greedy found nothing).
	seeded := *p
	if _, bestC, _ := ev.bestFeasible(p.Budget); bestC.A != nil {
		seeded.Base = bestC.A
		seeded.BaseRotation = bestC.Rot + 1
	}
	aSteps, err := pf.Anneal.Search(ctx, &seeded, ev, newSearchRand(p.Seed, "portfolio-anneal"))
	appendStage("anneal", aSteps)
	if err != nil {
		return trace, err
	}

	// Genetic restarts from the CURRENT best (annealing may have improved
	// on greedy), seeding its population with the strongest incumbent.
	if _, bestC, _ := ev.bestFeasible(p.Budget); bestC.A != nil {
		seeded.Base = bestC.A
		seeded.BaseRotation = bestC.Rot + 1
	}
	genSteps, err := pf.Genetic.Search(ctx, &seeded, ev, newSearchRand(p.Seed, "portfolio-genetic"))
	appendStage("genetic", genSteps)
	if err != nil {
		return trace, err
	}

	best, _, fp := ev.bestFeasible(p.Budget)
	trace = append(trace, TraceStep{
		Iter:     len(trace),
		Action:   fmt.Sprintf("portfolio best %016x", fp),
		Cost:     best.Cost,
		Value:    best.Value,
		Best:     best.Value,
		Accepted: true,
	})
	ev.noteRound("portfolio", &trace[len(trace)-1], 0)
	return trace, nil
}
