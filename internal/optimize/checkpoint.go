package optimize

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"diversify/internal/diversity"
	"diversify/internal/exploits"
	"diversify/internal/telemetry"
	"diversify/internal/topology"
)

// ErrCheckpoint reports an unusable checkpoint file: truncated, corrupt,
// or taken for a different (problem, strategy) pair.
var ErrCheckpoint = errors.New("optimize: bad checkpoint")

// ckptMagic identifies checkpoint files ("DVOPCKP" + format version).
var ckptMagic = [8]byte{'D', 'V', 'O', 'P', 'C', 'K', 'P', '1'}

// defaultCheckpointEvery is the snapshot cadence (evaluations between
// periodic writes) when RunOptions leaves CheckpointEvery unset.
const defaultCheckpointEvery = 32

// checkpointer periodically snapshots an evaluator's archive to disk.
//
// The design is replay-based: a checkpoint is the memoized evaluation
// state (every candidate scored so far, in evaluation order), NOT the
// strategy's program counter. Because every search is a deterministic
// function of (Problem, strategy, Seed), resuming restores the archive
// and simply replays the search from the top — every pre-crash
// evaluation becomes a cache hit, the strategy retraces its exact
// trajectory at memo speed, and the final Result is byte-identical to an
// uninterrupted run. No strategy needs to know checkpoints exist.
type checkpointer struct {
	path   string
	every  int
	digest uint64

	writes int
	spent  time.Duration
}

// maybeWrite snapshots when the evaluation count crosses the cadence.
// Called after every archive append, so the trigger fires exactly once
// per crossing — in a resumed run at the same evaluation counts as in
// the original, keeping the two runs' snapshot sequences aligned.
func (ck *checkpointer) maybeWrite(e *Evaluator) error {
	if len(e.cache)%ck.every != 0 {
		return nil
	}
	return ck.write(e)
}

// write unconditionally snapshots the archive (atomic tmp + fsync +
// rename, so a crash mid-write leaves the previous checkpoint intact).
func (ck *checkpointer) write(e *Evaluator) error {
	start := wallClock()
	data := encodeCheckpoint(ck.digest, e.archive)
	err := atomicWriteFile(ck.path, data)
	took := sinceWall(start)
	ck.spent += took
	if err != nil {
		return fmt.Errorf("optimize: checkpoint %s: %w", ck.path, err)
	}
	ck.writes++
	if e.sink != nil {
		e.sink.Emit(telemetry.CheckpointWritten{
			Path: ck.path, Evaluations: len(e.archive), Bytes: len(data), Duration: took,
		})
	}
	return nil
}

// scoreFields flattens a Score's measurements in the fixed serialization
// order; scoreFromFields inverts it.
func scoreFields(s Score) [12]float64 {
	return [12]float64{
		s.Value, s.PSuccess, s.MeanTTSF, s.FinalRatio, s.PDetect,
		s.MeanDetLatency, s.MeanDetections, s.Cost, s.MeanFoothold,
		s.MeanRotations, s.MeanReinfections, s.MeanRotationCost,
	}
}

func scoreFromFields(f [12]float64, quarantined bool) Score {
	return Score{
		Value: f[0], PSuccess: f[1], MeanTTSF: f[2], FinalRatio: f[3],
		PDetect: f[4], MeanDetLatency: f[5], MeanDetections: f[6],
		Cost: f[7], MeanFoothold: f[8], MeanRotations: f[9],
		MeanReinfections: f[10], MeanRotationCost: f[11],
		Quarantined: quarantined,
	}
}

// encodeCheckpoint serializes the archive:
//
//	magic[8] | problemDigest u64 | count u32 | records... | crc32 u32
//
// record: fp u64 | rot i32 | flags u8 (1 zoneOK, 2 quarantined) |
// nEntries u32 | entries (node u32, class u32, len u16, variant...) |
// 12 × measurement f64. All little-endian; the trailing CRC32 (IEEE)
// covers everything before it.
func encodeCheckpoint(digest uint64, archive []archived) []byte {
	le := binary.LittleEndian
	buf := make([]byte, 0, 64+len(archive)*192)
	buf = append(buf, ckptMagic[:]...)
	buf = le.AppendUint64(buf, digest)
	buf = le.AppendUint32(buf, uint32(len(archive)))
	for _, a := range archive {
		buf = le.AppendUint64(buf, a.fingerprint)
		buf = le.AppendUint32(buf, uint32(int32(a.cand.Rot)))
		var flags byte
		if a.zoneOK {
			flags |= 1
		}
		if a.score.Quarantined {
			flags |= 2
		}
		buf = append(buf, flags)
		entries := a.cand.A.Entries()
		buf = le.AppendUint32(buf, uint32(len(entries)))
		for _, en := range entries {
			buf = le.AppendUint32(buf, uint32(en.Node))
			buf = le.AppendUint32(buf, uint32(en.Class))
			buf = le.AppendUint16(buf, uint16(len(en.Variant)))
			buf = append(buf, en.Variant...)
		}
		for _, f := range scoreFields(a.score) {
			buf = le.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// ckptRec is one decoded archive record, before problem-level validation.
type ckptRec struct {
	fp          uint64
	rot         int
	zoneOK      bool
	quarantined bool
	entries     []diversity.Entry
	score       Score
}

// byteReader walks a checkpoint payload with saturating error state, so
// decode loops never index past a truncated buffer.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCheckpoint, r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// decodeCheckpoint parses and integrity-checks a checkpoint image. It
// never panics on malformed input — truncation, flipped bytes and
// implausible counts all come back as ErrCheckpoint (the fuzz harness
// pins this).
func decodeCheckpoint(data []byte) (digest uint64, recs []ckptRec, err error) {
	const minSize = 8 + 8 + 4 + 4 // magic + digest + count + crc
	if len(data) < minSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is below the %d-byte minimum", ErrCheckpoint, len(data), minSize)
	}
	if [8]byte(data[:8]) != ckptMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCheckpoint, data[:8])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrCheckpoint, want, got)
	}
	r := &byteReader{b: body, off: 8}
	digest = r.u64()
	count := r.u32()
	for i := uint32(0); i < count && r.err == nil; i++ {
		var rec ckptRec
		rec.fp = r.u64()
		rec.rot = int(int32(r.u32()))
		flags := r.u8()
		if flags&^byte(3) != 0 {
			return 0, nil, fmt.Errorf("%w: record %d: unknown flags %#x", ErrCheckpoint, i, flags)
		}
		rec.zoneOK = flags&1 != 0
		rec.quarantined = flags&2 != 0
		nEntries := r.u32()
		for j := uint32(0); j < nEntries && r.err == nil; j++ {
			node := r.u32()
			class := r.u32()
			variant := r.take(int(r.u16()))
			rec.entries = append(rec.entries, diversity.Entry{
				Node:    topology.NodeID(node),
				Class:   exploits.Class(class),
				Variant: exploits.VariantID(variant),
			})
		}
		var fields [12]float64
		for k := range fields {
			fields[k] = math.Float64frombits(r.u64())
		}
		rec.score = scoreFromFields(fields, rec.quarantined)
		recs = append(recs, rec)
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if r.off != len(body) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after %d records", ErrCheckpoint, len(body)-r.off, count)
	}
	return digest, recs, nil
}

// restoreCheckpoint loads path into the evaluator's cache and archive,
// returning how many evaluations were restored. The file's problem
// digest must match the current (problem, strategy) digest, every
// record's fingerprint must recompute from its decoded candidate, and
// node/rotation indices must exist in the current problem — a checkpoint
// that passes is semantically replayable, not just well-formed.
func restoreCheckpoint(ev *Evaluator, path string, digest uint64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	fileDigest, recs, err := decodeCheckpoint(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if fileDigest != digest {
		return 0, fmt.Errorf("%w: %s was taken for a different problem or strategy (digest %016x, want %016x)",
			ErrCheckpoint, path, fileDigest, digest)
	}
	nNodes := len(ev.p.Topo.Nodes())
	for i, rec := range recs {
		if rec.rot < -1 || rec.rot >= len(ev.p.Rotations) {
			return 0, fmt.Errorf("%w: %s: record %d: rotation %d outside [-1, %d)",
				ErrCheckpoint, path, i, rec.rot, len(ev.p.Rotations))
		}
		a := diversity.NewAssignment()
		for _, en := range rec.entries {
			if int(en.Node) < 0 || int(en.Node) >= nNodes {
				return 0, fmt.Errorf("%w: %s: record %d: node %d outside topology (%d nodes)",
					ErrCheckpoint, path, i, en.Node, nNodes)
			}
			a.Set(en.Node, en.Class, en.Variant)
		}
		cand := Candidate{A: a, Rot: rec.rot}
		if fp := cand.fingerprint(ev.rotFPs); fp != rec.fp {
			return 0, fmt.Errorf("%w: %s: record %d: fingerprint %016x does not match candidate (%016x)",
				ErrCheckpoint, path, i, rec.fp, fp)
		}
		if _, dup := ev.cache[rec.fp]; dup {
			return 0, fmt.Errorf("%w: %s: record %d: duplicate fingerprint %016x", ErrCheckpoint, path, i, rec.fp)
		}
		ev.cache[rec.fp] = rec.score
		ev.archive = append(ev.archive, archived{
			fingerprint: rec.fp,
			cand:        cand,
			score:       rec.score,
			// Recomputed, not trusted: deterministic for the digest-matched
			// problem, and immune to a flipped flag bit that survived CRC.
			zoneOK: ev.ZoneOK(a),
		})
	}
	return len(recs), nil
}

// atomicWriteFile writes data to path via a same-directory temp file,
// fsync and rename, so readers (and crash recovery) only ever observe
// the previous or the new complete image — never a torn write.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync makes the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync() //diversify:allow-discard best-effort dir sync; the data file itself was synced before the rename
		d.Close()
	}
	return nil
}
