package optimize

import "time"

// wallClock is the package's single wall-time source. Elapsed-time
// fields (Stats.Elapsed, telemetry step/batch durations, checkpoint
// write latency) are observability-only: they never feed scoring,
// acceptance decisions or checkpoint byte content, so one audited
// nondeterminism site covers them all. Tests freeze this variable to
// prove the rest of the runtime is clock-independent.
//
//diversify:det-pure observability-only elapsed times; never feeds scoring, acceptance or checkpoint bytes, and tests freeze it to prove it
var wallClock = time.Now //diversify:allow-nondet sole wall-time source; feeds only observability fields, never scoring or checkpoint bytes

// sinceWall is time.Since against the injectable clock.
func sinceWall(t time.Time) time.Duration { return wallClock().Sub(t) }
