package optimize

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"diversify/internal/diversity"
	"diversify/internal/exploits"
	"diversify/internal/malware"
	"diversify/internal/topology"
)

// testProblem builds a small, fast optimization over the reference
// tiered plant: OS and protocol diversification, one-week horizon.
func testProblem(seed uint64) Problem {
	topo := topology.NewTieredSCADA(topology.DefaultTieredSpec())
	cat := exploits.StuxnetCatalog()
	opts := diversity.EnumerateOptions(topo, cat,
		[]exploits.Class{exploits.ClassOS, exploits.ClassProtocol},
		func(n topology.Node) bool { return n.Kind != topology.KindCorporatePC })
	return Problem{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(),
		Options: opts,
		Cost:    diversity.CostModel{PlatformCost: 5, NodeCost: 2},
		Budget:  30,
		Horizon: 168, Reps: 6, Seed: seed,
		Iterations: 40, Population: 8,
	}
}

func strategies(t *testing.T) []Optimizer {
	t.Helper()
	var out []Optimizer
	for _, name := range []string{"greedy", "anneal", "genetic", "portfolio", "pareto"} {
		o, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o)
	}
	return out
}

// traceString formats a trace for byte-identity comparison with the
// Elapsed timestamps zeroed: elapsed wall time is honest telemetry, not
// part of the determinism contract.
func traceString(trace []TraceStep) string {
	stripped := make([]TraceStep, len(trace))
	copy(stripped, trace)
	for i := range stripped {
		stripped[i].Elapsed = 0
	}
	return fmt.Sprintf("%+v", stripped)
}

// Same seed and configuration must reproduce the identical trace and the
// identical final assignment, regardless of the worker count.
func TestDeterministicTraceAndAssignment(t *testing.T) {
	for _, o := range strategies(t) {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			var wantTrace, wantFP string
			for i, workers := range []int{1, 1, 4} {
				p := testProblem(11)
				p.Workers = workers
				res, err := Run(p, o)
				if err != nil {
					t.Fatal(err)
				}
				trace := traceString(res.Trace)
				fp := fmt.Sprintf("%016x/%+v", res.BestFingerprint, res.Best)
				if i == 0 {
					wantTrace, wantFP = trace, fp
					continue
				}
				if trace != wantTrace {
					t.Fatalf("workers=%d: trace diverged", workers)
				}
				if fp != wantFP {
					t.Fatalf("workers=%d: best diverged: %s vs %s", workers, fp, wantFP)
				}
			}
		})
	}
}

// Property: at equal budget, no strategy returns a result worse than the
// uniform (undiversified) baseline, and the result always fits the
// budget. Checked over several seeds per strategy.
func TestNeverWorseThanBaseline(t *testing.T) {
	for _, o := range strategies(t) {
		for seed := uint64(1); seed <= 5; seed++ {
			p := testProblem(seed)
			p.Reps = 4
			p.Iterations = 15
			res, err := Run(p, o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Best.Value > res.Baseline.Value {
				t.Errorf("%s seed %d: best %.4f worse than baseline %.4f",
					o.Name(), seed, res.Best.Value, res.Baseline.Value)
			}
			if res.Best.Cost > p.Budget+budgetEps {
				t.Errorf("%s seed %d: best cost %.2f exceeds budget %.2f",
					o.Name(), seed, res.Best.Cost, p.Budget)
			}
		}
	}
}

// Annealing and genetic search revisit candidates; the fingerprint cache
// must convert those into hits (identical candidates are never
// re-simulated).
func TestMemoizationHits(t *testing.T) {
	for _, name := range []string{"anneal", "genetic"} {
		o, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testProblem(3), o)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits == 0 {
			t.Errorf("%s: expected >0 cache hits, got 0 (misses %d)", name, res.CacheMisses)
		}
		if res.Evaluations != res.CacheMisses {
			t.Errorf("%s: evaluations %d != misses %d", name, res.Evaluations, res.CacheMisses)
		}
	}
}

// pointVec rebuilds the objective vector of a reported front point for
// the default cost × success × detection axes.
func pointVec(pt ParetoPoint) []float64 {
	return []float64{pt.Cost, pt.PSuccess + 1e-3*pt.FinalRatio, pt.MeanDetLatency}
}

// The Pareto front must be within budget, cost-sorted, free of
// duplicate objective vectors, and pairwise non-dominated in all three
// objectives — for every strategy's archive, not just the pareto
// search's.
func TestParetoFrontShape(t *testing.T) {
	for _, name := range []string{"anneal", "pareto"} {
		o, _ := ByName(name)
		p := testProblem(7)
		res, err := Run(p, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pareto) == 0 {
			t.Fatal("empty pareto front")
		}
		minValue := math.Inf(1)
		for i, pt := range res.Pareto {
			if pt.Cost > p.Budget+budgetEps {
				t.Errorf("%s: front point %d cost %.2f over budget", name, i, pt.Cost)
			}
			if i > 0 && pt.Cost < res.Pareto[i-1].Cost {
				t.Errorf("%s: front not cost-ascending at %d", name, i)
			}
			if pt.Value < minValue {
				minValue = pt.Value
			}
			for j, other := range res.Pareto {
				if i == j {
					continue
				}
				ov, pv := pointVec(other), pointVec(pt)
				if dominates(ov, pv) {
					t.Errorf("%s: front point %d dominated by %d", name, i, j)
				}
				if i < j && compareVec(ov, pv) == 0 {
					t.Errorf("%s: duplicate objective vector at %d and %d", name, i, j)
				}
			}
		}
		// The scalar incumbent's value is the front's success floor: the
		// success axis IS the MinimizeSuccess scalar, so the best feasible
		// candidate cannot be dominated out of the front.
		if minValue != res.Best.Value {
			t.Errorf("%s: front success floor %.4f != best %.4f", name, minValue, res.Best.Value)
		}
	}
}

// The evaluator must fail fast on unusable problems, and ByName must
// reject unknown strategies.
func TestValidation(t *testing.T) {
	if _, err := ByName("hillclimb"); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	o, _ := ByName("greedy")
	if _, err := Run(Problem{}, o); err == nil {
		t.Fatal("want error for empty problem")
	}
	p := testProblem(1)
	p.Options = nil
	if _, err := Run(p, o); err == nil {
		t.Fatal("want error for empty option space")
	}
	p = testProblem(1)
	p.Budget = -1
	if _, err := Run(p, o); err == nil {
		t.Fatal("want error for negative budget")
	}
	// A base assignment that already exceeds the budget leaves no
	// feasible candidate; a zero-valued Best must not be reported.
	p = testProblem(1)
	p.Base = diversity.NewAssignment()
	for _, opt := range p.Options[:4] {
		opt.Apply(p.Base)
	}
	p.Budget = 1
	if _, err := Run(p, o); err == nil {
		t.Fatal("want error when base assignment exceeds budget")
	}
}

// Greedy must spend budget only while it improves the objective, and the
// trace must reflect monotone improvement.
func TestGreedyTraceMonotone(t *testing.T) {
	o, _ := ByName("greedy")
	res, err := Run(testProblem(5), o)
	if err != nil {
		t.Fatal(err)
	}
	prev := res.Baseline.Value
	for i, step := range res.Trace {
		if !step.Accepted {
			t.Errorf("greedy trace step %d not accepted", i)
		}
		if step.Value >= prev {
			t.Errorf("greedy step %d value %.4f did not improve on %.4f", i, step.Value, prev)
		}
		prev = step.Value
	}
}

// Portfolio chains greedy → anneal → genetic over one shared evaluator;
// its result can never be worse than running greedy alone on the same
// problem, and it must stay deterministic across worker counts.
func TestPortfolioNeverWorseThanGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		p := testProblem(seed)
		p.Reps = 4
		p.Iterations = 10
		greedy, err := Run(p, &Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := Run(testProblemLike(p), &Portfolio{})
		if err != nil {
			t.Fatal(err)
		}
		if pf.Best.Value > greedy.Best.Value {
			t.Errorf("seed %d: portfolio best %.4f worse than greedy %.4f",
				seed, pf.Best.Value, greedy.Best.Value)
		}
		if pf.Best.Cost > p.Budget+budgetEps {
			t.Errorf("seed %d: portfolio best cost %.2f over budget", seed, pf.Best.Cost)
		}
	}
}

// testProblemLike clones a problem value for a second run (Problem is a
// value type; the copy keeps the same topology and option space).
func testProblemLike(p Problem) Problem { return p }

// Portfolio is a strategy like any other: registered by name,
// deterministic trace and winner for a fixed seed.
func TestPortfolioDeterministic(t *testing.T) {
	o, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	var wantTrace, wantFP string
	for i, workers := range []int{1, 4} {
		p := testProblem(21)
		p.Reps = 4
		p.Iterations = 8
		p.Workers = workers
		res, err := Run(p, o)
		if err != nil {
			t.Fatal(err)
		}
		trace := traceString(res.Trace)
		fp := fmt.Sprintf("%016x/%+v", res.BestFingerprint, res.Best)
		if i == 0 {
			wantTrace, wantFP = trace, fp
			continue
		}
		if trace != wantTrace {
			t.Fatalf("workers=%d: portfolio trace diverged", workers)
		}
		if fp != wantFP {
			t.Fatalf("workers=%d: portfolio best diverged", workers)
		}
	}
	// The trace must show all three stages ran.
	res, err := Run(func() Problem { p := testProblem(21); p.Reps = 4; p.Iterations = 8; return p }(), o)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range res.Trace {
		for _, prefix := range []string{"greedy: ", "anneal: ", "genetic: "} {
			if strings.HasPrefix(s.Action, prefix) {
				stages[prefix] = true
			}
		}
	}
	for _, prefix := range []string{"greedy: ", "anneal: ", "genetic: "} {
		if !stages[prefix] {
			t.Errorf("portfolio trace has no %q steps", prefix)
		}
	}
}
