package optimize

import (
	"context"
	"fmt"
	"math"

	"diversify/internal/diversity"
	"diversify/internal/rng"
)

// Greedy is marginal-gain placement-and-schedule search: every round it
// tentatively applies each affordable option to the incumbent — the
// surrogate-screened placement switches plus, when the problem carries
// rotation schedules, switching the incumbent to each other schedule —
// keeps the move with the best objective-improvement-per-unit-cost
// ratio, and stops when no affordable move improves the objective (or
// the round bound is hit). With a memoizing evaluator each round costs
// at most |screened options| + |schedules| simulations. The screened
// survivors are scanned in ascending option order, exactly as the
// exhaustive scan would visit them, so ties resolve identically.
type Greedy struct{}

// Name implements Optimizer.
func (*Greedy) Name() string { return "greedy" }

// Search implements Optimizer. Greedy is deterministic and ignores r.
//
//diversify:det-root seeded search entry point: same seed, same trace
func (*Greedy) Search(ctx context.Context, p *Problem, ev *Evaluator, _ *rng.Rand) ([]TraceStep, error) {
	trace, _, err := greedySearch(ctx, p, ev, p.Iterations)
	return trace, err
}

// greedySearch runs the marginal-gain loop and additionally returns the
// incumbent candidate after every accepted round — the trajectory the
// NSGA-II strategy seeds its population from. Cancellation stops the
// loop at the next round (or evaluation) boundary, returning the rounds
// accepted so far together with the context error.
func greedySearch(ctx context.Context, p *Problem, ev *Evaluator, maxRounds int) ([]TraceStep, []Candidate, error) {
	current := p.baseCand()
	cur, err := ev.Score(current)
	if err != nil {
		return nil, nil, err
	}
	if maxRounds <= 0 {
		maxRounds = len(p.Options) + len(p.Rotations)
	}
	order := screenOrder(p)
	nodes := p.Topo.Nodes()
	var trace []TraceStep
	var incumbents []Candidate
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return trace, incumbents, err
		}
		// bestIdx >= 0 selects an option; bestRot != current.Rot (with
		// bestIdx == -1) selects a schedule switch.
		bestIdx, bestRot := -1, current.Rot
		found := false
		bestRatio := 0.0
		var bestScore Score
		consider := func(s Score, idx, rot int) {
			if gain := cur.Value - s.Value; gain > 0 {
				ratio := gain / math.Max(s.Cost-cur.Cost, 1e-9)
				if !found || ratio > bestRatio {
					found, bestIdx, bestRot, bestRatio, bestScore = true, idx, rot, ratio, s
				}
			}
		}
		for _, i := range order {
			opt := p.Options[i]
			// Skip no-ops: the node already runs this variant.
			if v, ok := diversity.EffectiveVariant(current.A, nodes[opt.Node], opt.Class); ok && v == opt.Variant {
				continue
			}
			prev, had := current.A.Lookup(opt.Node, opt.Class)
			opt.Apply(current.A)
			if ev.Cost(current) <= p.Budget+budgetEps && ev.ZoneOK(current.A) {
				s, err := ev.Score(current)
				if err != nil {
					// Undo the tentative option so the incumbents returned on
					// cancellation are real accepted rounds, not a probe state.
					if had {
						current.A.Set(opt.Node, opt.Class, prev)
					} else {
						current.A.Unset(opt.Node, opt.Class)
					}
					return trace, incumbents, err
				}
				consider(s, i, current.Rot)
			}
			if had {
				current.A.Set(opt.Node, opt.Class, prev)
			} else {
				current.A.Unset(opt.Node, opt.Class)
			}
		}
		// Schedule switches: pair the incumbent placement with every other
		// schedule (and with none).
		for rot := -1; rot < len(p.Rotations); rot++ {
			if rot == current.Rot {
				continue
			}
			cand := Candidate{A: current.A, Rot: rot}
			if ev.Cost(cand) > p.Budget+budgetEps {
				continue
			}
			s, err := ev.Score(cand)
			if err != nil {
				return trace, incumbents, err
			}
			consider(s, -1, rot)
		}
		if !found {
			break // no affordable move improves the objective
		}
		action := ""
		if bestIdx >= 0 {
			chosen := p.Options[bestIdx]
			chosen.Apply(current.A)
			action = fmt.Sprintf("apply %s:%s=%s", nodes[chosen.Node].Name, chosen.Class, chosen.Variant)
		} else {
			current.Rot = bestRot
			action = "rotate " + p.rotName(bestRot)
		}
		cur = bestScore
		incumbents = append(incumbents, current.Clone())
		trace = append(trace, TraceStep{
			Iter:     round,
			Action:   action,
			Cost:     cur.Cost,
			Value:    cur.Value,
			Best:     cur.Value,
			Accepted: true,
		})
		ev.noteRound("greedy", &trace[len(trace)-1], 0)
	}
	return trace, incumbents, nil
}
