package optimize

import (
	"fmt"
	"math"

	"diversify/internal/diversity"
	"diversify/internal/rng"
)

// Greedy is marginal-gain placement: every round it tentatively applies
// each affordable option to the incumbent, keeps the one with the best
// objective-improvement-per-unit-cost ratio, and stops when no affordable
// option improves the objective (or the round bound is hit). With a
// memoizing evaluator each round costs at most |Options| simulations —
// and on large option spaces (Problem.ScreenTop) only the top-K options
// by the structural screening surrogate are simulated per round, which
// keeps grid-scale rounds a quarter of their exhaustive cost. The
// screened survivors are scanned in ascending option order, exactly as
// the exhaustive scan would visit them, so ties resolve identically.
type Greedy struct{}

// Name implements Optimizer.
func (*Greedy) Name() string { return "greedy" }

// Search implements Optimizer. Greedy is deterministic and ignores r.
func (*Greedy) Search(p *Problem, ev *Evaluator, _ *rng.Rand) ([]TraceStep, error) {
	current := p.base()
	cur, err := ev.Score(current)
	if err != nil {
		return nil, err
	}
	maxRounds := p.Iterations
	if maxRounds <= 0 {
		maxRounds = len(p.Options)
	}
	order := screenOrder(p)
	nodes := p.Topo.Nodes()
	var trace []TraceStep
	for round := 0; round < maxRounds; round++ {
		bestIdx := -1
		bestRatio := 0.0
		var bestScore Score
		for _, i := range order {
			opt := p.Options[i]
			// Skip no-ops: the node already runs this variant.
			if v, ok := diversity.EffectiveVariant(current, nodes[opt.Node], opt.Class); ok && v == opt.Variant {
				continue
			}
			prev, had := current.Lookup(opt.Node, opt.Class)
			opt.Apply(current)
			cost := ev.Cost(current)
			if cost <= p.Budget+budgetEps {
				s, err := ev.Score(current)
				if err != nil {
					return nil, err
				}
				if gain := cur.Value - s.Value; gain > 0 {
					ratio := gain / math.Max(cost-cur.Cost, 1e-9)
					if bestIdx == -1 || ratio > bestRatio {
						bestIdx, bestRatio, bestScore = i, ratio, s
					}
				}
			}
			if had {
				current.Set(opt.Node, opt.Class, prev)
			} else {
				current.Unset(opt.Node, opt.Class)
			}
		}
		if bestIdx == -1 {
			break // no affordable option improves the objective
		}
		chosen := p.Options[bestIdx]
		chosen.Apply(current)
		cur = bestScore
		trace = append(trace, TraceStep{
			Iter:     round,
			Action:   fmt.Sprintf("apply %s:%s=%s", nodes[chosen.Node].Name, chosen.Class, chosen.Variant),
			Cost:     cur.Cost,
			Value:    cur.Value,
			Best:     cur.Value,
			Accepted: true,
		})
	}
	return trace, nil
}
