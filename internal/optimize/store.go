package optimize

import "diversify/internal/evalstore"

// evalSpecDigest hashes everything OUTSIDE the candidate that shapes an
// evaluation's raw measurements: the exploit catalog, the threat
// profile, the horizon, the replication count and seed (the common
// random number streams) and the firewall override. The topology is
// deliberately left out (it is its own key word), and so are the cost
// model, budget, objective, axes and search knobs — those shape what
// the optimizer does with measurements, not the measurements themselves,
// which is exactly why a re-optimization under a tweaked budget or
// objective can warm-start from the store.
func evalSpecDigest(p *Problem) uint64 {
	d := newDigester()
	d.str("diversify/evalspec/v1")
	d.u64(p.Catalog.Fingerprint())
	digestProfile(d, p)
	d.f64(p.Horizon)
	d.i64(int64(p.Reps))
	d.u64(p.Seed)
	d.str(string(p.FirewallVariant))
	return d.sum()
}

// storeKey builds the durable-store key for a candidate fingerprint.
func (e *Evaluator) storeKey(candFP uint64) evalstore.Key {
	return evalstore.Key{Topo: e.topoFP, Cand: candFP, Spec: e.specFP}
}

// measurementsOf flattens a Score's raw measurements in the store's
// fixed order — Value and Cost stay out, they are recomputed from the
// consuming run's own objective and cost model.
func measurementsOf(s Score) evalstore.Measurements {
	return evalstore.Measurements{
		s.PSuccess, s.MeanTTSF, s.FinalRatio, s.PDetect, s.MeanDetLatency,
		s.MeanDetections, s.MeanFoothold, s.MeanRotations, s.MeanReinfections,
		s.MeanRotationCost,
	}
}

// scoreFromMeasurements inverts measurementsOf (Value and Cost are
// filled in by the caller).
func scoreFromMeasurements(m evalstore.Measurements) Score {
	return Score{
		PSuccess: m[0], MeanTTSF: m[1], FinalRatio: m[2], PDetect: m[3],
		MeanDetLatency: m[4], MeanDetections: m[5], MeanFoothold: m[6],
		MeanRotations: m[7], MeanReinfections: m[8], MeanRotationCost: m[9],
	}
}
