package optimize

import (
	"context"
	"path/filepath"
	"testing"
)

// benchArchive builds an evaluator holding n archived evaluations
// without paying for simulation: the records are synthesized from real
// candidates (distinct option subsets over the tiered topology), so
// encode/decode benches exercise representative entry counts and
// variant strings.
func benchArchive(b *testing.B, n int) *Evaluator {
	p := benchProblem()
	p.normalize()
	if err := p.validate(); err != nil {
		b.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a := p.base()
		for j := 0; j <= i%len(p.Options); j++ {
			p.Options[(i+j)%len(p.Options)].Apply(a)
		}
		cand := Candidate{A: a, Rot: -1}
		fp := cand.fingerprint(ev.rotFPs)
		if _, dup := ev.cache[fp]; dup {
			continue
		}
		s := Score{Value: float64(i), PSuccess: 0.5, MeanTTSF: 100, FinalRatio: 0.2, Cost: float64(i % 30)}
		ev.cache[fp] = s
		ev.archive = append(ev.archive, archived{fingerprint: fp, cand: cand, score: s, zoneOK: true})
	}
	return ev
}

// BenchmarkCheckpointWrite measures one checkpoint snapshot — encode,
// atomic temp write, fsync, rename — the unit of overhead paid every
// CheckpointEvery evaluations.
func BenchmarkCheckpointWrite(b *testing.B) {
	ev := benchArchive(b, 64)
	ck := &checkpointer{path: filepath.Join(b.TempDir(), "ck"), every: 1, digest: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ck.write(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointDecode measures parsing + CRC verification of a
// snapshot, the fixed cost of -resume before replay begins.
func BenchmarkCheckpointDecode(b *testing.B) {
	ev := benchArchive(b, 64)
	data := encodeCheckpoint(42, ev.archive)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeCheckpoint(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeCheckpointed is BenchmarkOptimizeGreedy with the
// default checkpoint cadence attached — the two together put a number
// on the end-to-end overhead of crash safety.
func BenchmarkOptimizeCheckpointed(b *testing.B) {
	o, err := ByName("greedy")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "ck")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(context.Background(), benchProblem(), o, RunOptions{CheckpointPath: path}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWarmStore measures a fully warm-started greedy run:
// every simulation is served from the durable evaluation store, so this
// bounds the cost of a re-optimization after a knob tweak.
func BenchmarkOptimizeWarmStore(b *testing.B) {
	o, err := ByName("greedy")
	if err != nil {
		b.Fatal(err)
	}
	store := filepath.Join(b.TempDir(), "evals.store")
	if _, err := RunWith(context.Background(), benchProblem(), o, RunOptions{StorePath: store}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(context.Background(), benchProblem(), o, RunOptions{StorePath: store}); err != nil {
			b.Fatal(err)
		}
	}
}
