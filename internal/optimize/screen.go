package optimize

import (
	"cmp"
	"slices"

	"diversify/internal/malware"
)

// Option screening keeps grid-scale greedy search tractable: instead of
// simulating every affordable option each round (|options| campaigns ×
// reps), the options are ranked once by a cheap structural surrogate
// and only the top K are simulated per round. The surrogate needs no
// replications — it multiplies the node's path centrality between the
// threat's entry points and its targets (the same articulation/on-path
// machinery the strategic placement policy uses) by the resilience gain
// of the switch, so options that harden choke points with genuinely
// stronger variants rank first.

// defaultScreenFloor and defaultScreenDivisor shape the default K:
// option spaces up to 2×floor are searched exhaustively; larger ones
// are screened to a quarter (never below the floor), which keeps the
// simulated set at most half of the space.
const (
	defaultScreenFloor   = 24
	defaultScreenDivisor = 4
)

// screenTop resolves the per-round simulation bound from ScreenTop.
func (p *Problem) screenTop() int {
	switch {
	case p.ScreenTop < 0:
		return len(p.Options)
	case p.ScreenTop > 0:
		return p.ScreenTop
	}
	if len(p.Options) <= 2*defaultScreenFloor {
		return len(p.Options)
	}
	k := len(p.Options) / defaultScreenDivisor
	if k < defaultScreenFloor {
		k = defaultScreenFloor
	}
	return k
}

// screenScores computes the surrogate score of every option:
//
//	score = criticality × resilienceGain
//
// where criticality is the shared structural surrogate
// (malware.CriticalityScores: on-path centrality between the threat's
// entries and targets, articulation and target bonuses) and
// resilienceGain is the catalog resilience delta of the switch over the
// node's default (non-upgrades rank at or below zero). Purely
// structural — no simulation — and deterministic for a given problem.
func screenScores(p *Problem) []float64 {
	nodes := p.Topo.Nodes()
	crit := malware.CriticalityScores(p.Topo, p.Profile)
	scores := make([]float64, len(p.Options))
	for i, opt := range p.Options {
		gain := 0.0
		if def, ok := nodes[opt.Node].Components[opt.Class]; ok {
			dv, okD := p.Catalog.Variant(def)
			nv, okN := p.Catalog.Variant(opt.Variant)
			if okD && okN {
				gain = nv.Resilience - dv.Resilience
			}
		}
		scores[i] = crit[opt.Node] * gain
	}
	return scores
}

// screenOrder returns the option indices greedy may simulate, ranked by
// surrogate score descending (ties by index) and truncated to the top
// K, then restored to ascending index order — so the screened scan
// visits survivors exactly as the unscreened scan would and tie-breaks
// identically.
func screenOrder(p *Problem) []int {
	k := p.screenTop()
	idx := make([]int, len(p.Options))
	for i := range idx {
		idx[i] = i
	}
	if k >= len(idx) {
		return idx
	}
	scores := screenScores(p)
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(scores[b], scores[a]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	idx = idx[:k]
	slices.Sort(idx)
	return idx
}
