package optimize

import (
	"cmp"
	"slices"

	"diversify/internal/malware"
	"diversify/internal/topology"
)

// Option screening keeps grid-scale greedy search tractable: instead of
// simulating every affordable option each round (|options| campaigns ×
// reps), the options are ranked once by a cheap structural surrogate
// and only the top K are simulated per round. The surrogate needs no
// replications — it multiplies the node's path centrality between the
// threat's entry points and its targets (the same articulation/on-path
// machinery the strategic placement policy uses) by the resilience gain
// of the switch, so options that harden choke points with genuinely
// stronger variants rank first.

// defaultScreenFloor and defaultScreenDivisor shape the default K:
// option spaces up to 2×floor are searched exhaustively; larger ones
// are screened to a quarter (never below the floor), which keeps the
// simulated set at most half of the space.
const (
	defaultScreenFloor   = 24
	defaultScreenDivisor = 4
)

// screenTop resolves the per-round simulation bound from ScreenTop.
func (p *Problem) screenTop() int {
	switch {
	case p.ScreenTop < 0:
		return len(p.Options)
	case p.ScreenTop > 0:
		return p.ScreenTop
	}
	if len(p.Options) <= 2*defaultScreenFloor {
		return len(p.Options)
	}
	k := len(p.Options) / defaultScreenDivisor
	if k < defaultScreenFloor {
		k = defaultScreenFloor
	}
	return k
}

// screenScores computes the surrogate score of every option:
//
//	score = (1 + onPath + cutBonus + targetBonus) × resilienceGain
//
// where onPath counts shortest entry→target paths through the node,
// cutBonus marks articulation points (hardening them severs attack
// paths outright), targetBonus marks the objective's target nodes
// (hardening the PLC itself blocks the final stage), and resilienceGain
// is the catalog resilience delta of the switch over the node's default
// (non-upgrades rank at or below zero). Purely structural — no
// simulation — and deterministic for a given problem.
func screenScores(p *Problem) []float64 {
	nodes := p.Topo.Nodes()
	var entries, targets []topology.NodeID
	for _, k := range p.Profile.EntryKinds {
		entries = append(entries, p.Topo.NodesOfKind(k)...)
	}
	entrySet := map[topology.NodeID]bool{}
	for _, e := range entries {
		entrySet[e] = true
	}
	// Impairment campaigns end at PLCs; espionage campaigns exfiltrate
	// from any component-carrying node, so every non-entry carrier is a
	// target there.
	impairment := p.Profile.Objective == malware.ObjectiveImpairment
	targetSet := map[topology.NodeID]bool{}
	for _, n := range nodes {
		if n.Kind == topology.KindPLC ||
			(!impairment && len(n.Components) > 0 && !entrySet[n.ID]) {
			targets = append(targets, n.ID)
			targetSet[n.ID] = true
		}
	}
	onPath := p.Topo.OnPathScores(entries, targets)
	cuts := map[topology.NodeID]bool{}
	for _, id := range p.Topo.ArticulationPoints() {
		cuts[id] = true
	}
	maxPath := 0
	for _, s := range onPath {
		if s > maxPath {
			maxPath = s
		}
	}
	scores := make([]float64, len(p.Options))
	for i, opt := range p.Options {
		crit := 1.0
		if maxPath > 0 {
			crit += float64(onPath[opt.Node]) / float64(maxPath)
		}
		if cuts[opt.Node] {
			crit += 1
		}
		if targetSet[opt.Node] {
			crit += 0.5
		}
		gain := 0.0
		if def, ok := nodes[opt.Node].Components[opt.Class]; ok {
			dv, okD := p.Catalog.Variant(def)
			nv, okN := p.Catalog.Variant(opt.Variant)
			if okD && okN {
				gain = nv.Resilience - dv.Resilience
			}
		}
		scores[i] = crit * gain
	}
	return scores
}

// screenOrder returns the option indices greedy may simulate, ranked by
// surrogate score descending (ties by index) and truncated to the top
// K, then restored to ascending index order — so the screened scan
// visits survivors exactly as the unscreened scan would and tie-breaks
// identically.
func screenOrder(p *Problem) []int {
	k := p.screenTop()
	idx := make([]int, len(p.Options))
	for i := range idx {
		idx[i] = i
	}
	if k >= len(idx) {
		return idx
	}
	scores := screenScores(p)
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(scores[b], scores[a]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	idx = idx[:k]
	slices.Sort(idx)
	return idx
}
