package optimize

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"diversify/internal/rotation"
)

// resultJSON renders the byte-identity surface of a run.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// withRotations widens the test problem to the placement × schedule
// space, so checkpoint records exercise the Rot dimension too.
func withRotations(p Problem) Problem {
	p.Rotations = []rotation.Spec{{Kind: rotation.Periodic, Period: 48, Batch: 2}}
	p.Budget = 40
	return p
}

// A run killed mid-search and resumed from its final checkpoint must
// reproduce the uninterrupted run's Result byte for byte — for every
// strategy, and regardless of the worker counts on either side of the
// crash. This is the replay-based resume contract.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, name := range []string{"greedy", "anneal", "genetic", "portfolio", "pareto"} {
		name := name
		t.Run(name, func(t *testing.T) {
			o, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			clean, err := Run(withRotations(testProblem(31)), o)
			if err != nil {
				t.Fatal(err)
			}
			want := resultJSON(t, clean)

			// "Crash" the run: cancel after a fixed number of replications,
			// leaving behind the final (degraded) checkpoint.
			ck := filepath.Join(t.TempDir(), "search.ckpt")
			p := withRotations(testProblem(31))
			p.Workers = 4
			ctx, cancel := context.WithCancel(context.Background())
			var calls atomic.Int64
			p.repHook = func(Candidate, int) {
				if calls.Add(1) == int64(20*p.Reps) {
					cancel()
				}
			}
			res, err := RunWith(ctx, p, o, RunOptions{CheckpointPath: ck, CheckpointEvery: 5})
			cancel()
			if err != nil {
				t.Fatalf("interrupted run failed outright: %v", err)
			}
			if res.Degraded == "" {
				t.Skip("search finished before the injected crash; nothing to resume")
			}
			if res.Stats.Checkpoints == 0 {
				t.Fatal("interrupted run wrote no checkpoints")
			}

			for _, workers := range []int{1, 3, 7} {
				p := withRotations(testProblem(31))
				p.Workers = workers
				resumed, err := RunWith(context.Background(), p, o, RunOptions{ResumePath: ck})
				if err != nil {
					t.Fatalf("resume with %d workers: %v", workers, err)
				}
				if !resumed.Stats.Resumed || resumed.Stats.RestoredEvaluations == 0 {
					t.Fatalf("resume with %d workers restored nothing: %+v", workers, resumed.Stats)
				}
				if got := resultJSON(t, resumed); got != want {
					t.Fatalf("resumed run (%d workers) diverged from the clean run:\n got %s\nwant %s", workers, got, want)
				}
			}
		})
	}
}

// A checkpointed run that completes normally must be byte-identical to a
// plain run (checkpointing observes the search, never perturbs it), and
// resuming from its final checkpoint must replay without a single fresh
// simulation.
func TestCheckpointObservesWithoutPerturbing(t *testing.T) {
	o, _ := ByName("anneal")
	clean, err := Run(testProblem(33), o)
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "search.ckpt")
	chk, err := RunWith(context.Background(), testProblem(33), o, RunOptions{CheckpointPath: ck, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, chk) != resultJSON(t, clean) {
		t.Fatal("checkpointing changed the run's result")
	}
	if chk.Stats.Checkpoints == 0 || chk.Stats.CheckpointTime <= 0 {
		t.Fatalf("checkpointed run recorded no writes: %+v", chk.Stats)
	}
	resumed, err := RunWith(context.Background(), testProblem(33), o, RunOptions{ResumePath: ck})
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, resumed) != resultJSON(t, clean) {
		t.Fatal("full-checkpoint resume diverged from the clean run")
	}
	// Every search evaluation replays from the restored cache; only the
	// random comparison baseline simulates.
	if resumed.Stats.RestoredEvaluations != clean.CacheMisses {
		t.Fatalf("restored %d evaluations, want the clean run's %d", resumed.Stats.RestoredEvaluations, clean.CacheMisses)
	}
}

// A missing resume file is the first run of a crash-restart loop, not an
// error: the run proceeds fresh and still matches the plain run.
func TestResumeMissingFileRunsFresh(t *testing.T) {
	o, _ := ByName("greedy")
	clean, err := Run(testProblem(35), o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWith(context.Background(), testProblem(35), o,
		RunOptions{ResumePath: filepath.Join(t.TempDir(), "never-written.ckpt")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Resumed {
		t.Fatal("run claims to have resumed from a missing file")
	}
	if resultJSON(t, res) != resultJSON(t, clean) {
		t.Fatal("fresh run with a missing resume file diverged from plain Run")
	}
}

// A checkpoint must refuse to resume a different problem or strategy:
// the digest covers everything that shapes the search trajectory.
func TestResumeRejectsMismatchedProblem(t *testing.T) {
	o, _ := ByName("anneal")
	ck := filepath.Join(t.TempDir(), "search.ckpt")
	if _, err := RunWith(context.Background(), testProblem(37), o, RunOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	// Different seed → different evaluation streams → refuse.
	p := testProblem(38)
	if _, err := RunWith(context.Background(), p, o, RunOptions{ResumePath: ck}); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("seed mismatch: err = %v, want ErrCheckpoint", err)
	}
	// Different strategy → different trajectory → refuse.
	g, _ := ByName("greedy")
	if _, err := RunWith(context.Background(), testProblem(37), g, RunOptions{ResumePath: ck}); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("strategy mismatch: err = %v, want ErrCheckpoint", err)
	}
	// Same everything → accept. Workers deliberately differ: the digest
	// must not bind the checkpoint to a worker count.
	p2 := testProblem(37)
	p2.Workers = 2
	if _, err := RunWith(context.Background(), p2, o, RunOptions{ResumePath: ck}); err != nil {
		t.Fatalf("matched problem refused: %v", err)
	}
}

// Corrupting any byte of a checkpoint must yield a clean ErrCheckpoint
// (the CRC or a structural check catches it), never a panic or a silent
// partial restore.
func TestResumeRejectsCorruptFile(t *testing.T) {
	o, _ := ByName("greedy")
	ck := filepath.Join(t.TempDir(), "search.ckpt")
	if _, err := RunWith(context.Background(), testProblem(39), o, RunOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func([]byte) []byte) {
		bad := f(append([]byte(nil), data...))
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RunWith(context.Background(), testProblem(39), o, RunOptions{ResumePath: path}); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("%s: err = %v, want ErrCheckpoint", name, err)
		}
	}
	mutate("flipped payload byte", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-7] })
	mutate("truncated to header", func(b []byte) []byte { return b[:10] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
}

// The checkpoint writer must stay within the 5% wall-clock overhead
// budget at the default cadence — snapshots are cheap relative to even
// this test-sized Monte-Carlo evaluation load.
func TestCheckpointOverheadBudget(t *testing.T) {
	o, _ := ByName("anneal")
	p := testProblem(41)
	// Production-shaped load: the replication count is what makes an
	// evaluation expensive relative to a snapshot fsync.
	p.Reps = 30
	p.Iterations = 150
	res, err := RunWith(context.Background(), p, o,
		RunOptions{CheckpointPath: filepath.Join(t.TempDir(), "search.ckpt")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if limit := res.Stats.Elapsed / 20; res.Stats.CheckpointTime > limit {
		t.Fatalf("checkpointing consumed %v of %v wall-clock (budget 5%% = %v)",
			res.Stats.CheckpointTime, res.Stats.Elapsed, limit)
	}
}

// Raw encode/decode round trip, including quarantined and rotated
// records.
func TestCheckpointRoundTrip(t *testing.T) {
	p := withRotations(testProblem(43))
	p.normalize()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Score(p.baseCand()); err != nil {
		t.Fatal(err)
	}
	rotated := Candidate{A: p.base(), Rot: 0}
	p.Options[0].Apply(rotated.A)
	if _, err := ev.Score(rotated); err != nil {
		t.Fatal(err)
	}
	// Hand-plant a quarantined record to cover the flag bit.
	quar := Candidate{A: p.base(), Rot: -1}
	p.Options[1].Apply(quar.A)
	qfp := quar.fingerprint(ev.rotFPs)
	ev.cache[qfp] = Score{Value: quarantineValue, Quarantined: true, Cost: ev.Cost(quar)}
	ev.archive = append(ev.archive, archived{fingerprint: qfp, cand: quar, score: ev.cache[qfp], zoneOK: true})

	digest := problemDigest(&p, "roundtrip")
	gotDigest, recs, err := decodeCheckpoint(encodeCheckpoint(digest, ev.archive))
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest {
		t.Fatalf("digest %016x, want %016x", gotDigest, digest)
	}
	if len(recs) != len(ev.archive) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(ev.archive))
	}
	for i, rec := range recs {
		want := ev.archive[i]
		if rec.fp != want.fingerprint || rec.rot != want.cand.Rot || rec.score != want.score {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, rec, want)
		}
		if len(rec.entries) != want.cand.A.Len() {
			t.Fatalf("record %d: %d entries, want %d", i, len(rec.entries), want.cand.A.Len())
		}
	}
}

// Checkpoint decoding must never panic, whatever bytes are on disk —
// truncations, bit flips, hostile counts. Runs under plain `go test` via
// the seed corpus; `go test -fuzz=FuzzCheckpointDecode` explores further.
func FuzzCheckpointDecode(f *testing.F) {
	p := testProblem(45)
	p.normalize()
	if err := p.validate(); err != nil {
		f.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := ev.Score(p.baseCand()); err != nil {
		f.Fatal(err)
	}
	c := p.baseCand()
	p.Options[0].Apply(c.A)
	if _, err := ev.Score(c); err != nil {
		f.Fatal(err)
	}
	valid := encodeCheckpoint(problemDigest(&p, "fuzz"), ev.archive)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:11])
	f.Add([]byte{})
	f.Add([]byte("DVOPCKP1"))
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		digest, recs, err := decodeCheckpoint(data)
		if err == nil && digest == 0 && recs == nil && len(data) > 64 {
			// Nothing to assert — the call simply must not panic; this
			// branch only keeps the compiler from eliding the results.
			t.Log("decoded empty checkpoint")
		}
	})
}
