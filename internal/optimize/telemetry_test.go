package optimize

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"diversify/internal/telemetry"
)

// Telemetry observes the search, it never steers it: with a recording
// sink attached the trace, winner and fingerprint must stay
// byte-identical to the bare run, for every strategy and worker count.
func TestInstrumentedRunsAreByteIdentical(t *testing.T) {
	for _, o := range strategies(t) {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			bare, err := Run(testProblem(11), o)
			if err != nil {
				t.Fatal(err)
			}
			if bare.Telemetry != nil {
				t.Fatalf("bare run populated Result.Telemetry")
			}
			want := traceString(bare.Trace) + fmt.Sprintf("/%016x/%+v", bare.BestFingerprint, bare.Best)
			for _, workers := range []int{1, 4} {
				p := testProblem(11)
				p.Workers = workers
				rec := &telemetry.Recorder{}
				res, err := RunWith(t.Context(), p, o, RunOptions{Sink: rec})
				if err != nil {
					t.Fatal(err)
				}
				got := traceString(res.Trace) + fmt.Sprintf("/%016x/%+v", res.BestFingerprint, res.Best)
				if got != want {
					t.Fatalf("workers=%d: instrumented run diverged from bare run", workers)
				}
				if res.Telemetry == nil {
					t.Fatalf("workers=%d: sink attached but Result.Telemetry is nil", workers)
				}
				if rec.Count("run_started") != 1 || rec.Count("run_finished") != 1 {
					t.Fatalf("workers=%d: stream not bracketed: %d started, %d finished",
						workers, rec.Count("run_started"), rec.Count("run_finished"))
				}
				if rec.Count("round_completed") == 0 || rec.Count("evaluation_batch") == 0 {
					t.Fatalf("workers=%d: missing rounds/batches in stream", workers)
				}
			}
		})
	}
}

// The telemetry report's totals must agree with the returned Result, its
// ratios must be well-formed, and the round stream must attribute rounds
// and wall time per strategy — including the portfolio chain reporting
// its stages under their own names.
func TestTelemetryReportConsistency(t *testing.T) {
	o, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem(21)
	p.Reps = 4
	p.Iterations = 8
	rec := &telemetry.Recorder{}
	res, err := RunWith(t.Context(), p, o, RunOptions{Sink: rec})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Telemetry
	if r == nil {
		t.Fatal("no telemetry report")
	}
	if r.Strategy != "portfolio" || r.Best != res.Best.Value {
		t.Fatalf("header disagrees with Result: %+v vs best %v", r, res.Best.Value)
	}
	if r.Evaluations != res.Evaluations || r.CacheHits != res.CacheHits || r.Replications != res.Replications {
		t.Fatalf("totals disagree with Result: report %d/%d/%d, result %d/%d/%d",
			r.Evaluations, r.CacheHits, r.Replications, res.Evaluations, res.CacheHits, res.Replications)
	}
	wantRatio := float64(r.CacheHits) / float64(r.CacheHits+r.Evaluations)
	if r.CacheHitRatio < 0 || r.CacheHitRatio > 1 || math.Abs(r.CacheHitRatio-wantRatio) > 1e-12 {
		t.Fatalf("cache hit ratio %v, want %v", r.CacheHitRatio, wantRatio)
	}
	if r.Rounds != len(res.Trace) {
		t.Fatalf("rounds %d != trace steps %d", r.Rounds, len(res.Trace))
	}
	sumRounds := 0
	for _, n := range r.StrategyRounds {
		sumRounds += n
	}
	if sumRounds != r.Rounds {
		t.Fatalf("per-strategy rounds sum %d != total %d (%v)", sumRounds, r.Rounds, r.StrategyRounds)
	}
	// The portfolio's stages report under their own names, plus the final
	// portfolio step.
	for _, stage := range []string{"greedy", "anneal", "genetic", "portfolio"} {
		if r.StrategyRounds[stage] == 0 {
			t.Errorf("no rounds attributed to stage %q: %v", stage, r.StrategyRounds)
		}
	}
	wall := 0.0
	for stage, s := range r.StrategyWallSeconds {
		if s < 0 {
			t.Errorf("negative wall time for %q", stage)
		}
		wall += s
	}
	// Round wall deltas partition a prefix of the run: their sum cannot
	// exceed the run's elapsed time.
	if wall > r.ElapsedSeconds+1e-6 {
		t.Fatalf("per-strategy wall %v exceeds run elapsed %v", wall, r.ElapsedSeconds)
	}
	if r.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed %v", r.ElapsedSeconds)
	}
	// The latency population covers every simulated batch; the Result
	// bills the strategy only, so the random comparison row — simulated
	// after the effort snapshot — is the one extra batch.
	if r.EvalLatency == nil || r.EvalLatency.Count != res.Evaluations+1 {
		t.Fatalf("latency population %+v, want count %d", r.EvalLatency, res.Evaluations+1)
	}
	if r.Retries != res.Stats.Retries || r.Quarantined != res.Stats.Quarantined {
		t.Fatalf("fault accounting disagrees with Stats")
	}
}

// The trace timestamps are monotonic: elapsed time never decreases
// across the trace, even across portfolio stage boundaries.
func TestTraceElapsedMonotonic(t *testing.T) {
	o, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem(3)
	p.Reps = 4
	p.Iterations = 6
	res, err := Run(p, o)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace[0].Elapsed
	if last <= 0 {
		t.Fatalf("first step has no elapsed timestamp")
	}
	for i, s := range res.Trace {
		if s.Elapsed < last {
			t.Fatalf("step %d: elapsed went backwards (%v after %v)", i, s.Elapsed, last)
		}
		last = s.Elapsed
	}
}

// With telemetry disabled the memoized evaluation path must not touch
// the clock or allocate: the nil-check is the entire overhead.
func TestDisabledSinkCacheHitZeroAllocs(t *testing.T) {
	p := testProblem(5)
	p.normalize()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		t.Fatal(err)
	}
	cand := Candidate{A: p.base(), Rot: -1}
	if _, err := ev.Score(cand); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ev.Score(cand); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Score with telemetry disabled allocates %v/op, want 0", allocs)
	}
}

// Events arrive from the search loop and the evaluator workers while a
// /metrics scrape reads the registry — the full concurrent surface, run
// under -race.
func TestConcurrentSinkAndScrape(t *testing.T) {
	o, err := ByName("genetic")
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem(9)
	p.Workers = 4
	p.Reps = 4
	p.Iterations = 6
	reg := telemetry.NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	res, err := RunWith(t.Context(), p, o, RunOptions{Sink: &telemetry.Recorder{}, Metrics: reg})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry report")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`diversify_rounds_total{strategy="genetic"}`,
		"diversify_eval_batches_total",
		"diversify_eval_latency_seconds_count",
		"diversify_best_value",
		"diversify_run_elapsed_seconds",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
