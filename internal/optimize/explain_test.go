package optimize

import (
	"encoding/json"
	"testing"

	"diversify/internal/rotation"
)

// tracedProblem is testProblem with trace capture and a rotation
// schedule in the search space, so explanations can show churn.
func tracedProblem(seed uint64) Problem {
	p := testProblem(seed)
	p.TraceSample = 1
	p.Rotations = []rotation.Spec{{Kind: rotation.Adaptive, Period: 24, Batch: 2}}
	return p
}

// TestExplanationsProduced checks the post-search replay attaches one
// explanation per comparison candidate, labeled and populated.
func TestExplanationsProduced(t *testing.T) {
	res, err := Run(tracedProblem(7), &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 2 {
		t.Fatalf("got %d explanations, want 2 (baseline, best)", len(res.Explanations))
	}
	labels := map[string]bool{}
	for _, ex := range res.Explanations {
		labels[ex.Candidate] = true
		if ex.Replications != 6 || ex.Sampled != 6 {
			t.Errorf("%s: sampled %d/%d, want 6/6 at rate 1", ex.Candidate, ex.Sampled, ex.Replications)
		}
		if ex.Records == 0 {
			t.Errorf("%s: no records captured", ex.Candidate)
		}
		if ex.Rotation == "" {
			t.Errorf("%s: unnamed schedule", ex.Candidate)
		}
	}
	if !labels["baseline"] || !labels["best"] {
		t.Fatalf("labels %v, want baseline and best", labels)
	}
}

// TestExplanationsWorkerInvariant asserts the explanations — which ARE
// inside the byte-identity surface — come out byte-identical for every
// worker count.
func TestExplanationsWorkerInvariant(t *testing.T) {
	run := func(workers int) string {
		p := tracedProblem(3)
		p.Workers = workers
		res, err := Run(p, &Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Explanations)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			t.Fatalf("explanations differ at %d workers", w)
		}
	}
}

// TestTraceSampleDoesNotPerturbSearch pins the observe-don't-steer
// contract: with capture on, everything about the Result except the
// Explanations field is identical to the untraced run.
func TestTraceSampleDoesNotPerturbSearch(t *testing.T) {
	strip := func(res *Result) string {
		res.Explanations = nil
		return traceString(res.Trace) + "|" + mustJSON(t, res.Best) + "|" + mustJSON(t, res.Baseline) +
			"|" + mustJSON(t, res.Random) + "|" + mustJSON(t, res.Decisions) + "|" + res.BestRotation
	}
	p := tracedProblem(11)
	traced, err := Run(p, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Explanations) == 0 {
		t.Fatal("traced run produced no explanations")
	}
	evalsTraced := traced.Evaluations

	p2 := tracedProblem(11)
	p2.TraceSample = 0
	plain, err := Run(p2, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Explanations) != 0 {
		t.Fatal("untraced run produced explanations")
	}
	if strip(traced) != strip(plain) {
		t.Fatal("trace capture perturbed the search result")
	}
	// The replay is off the books: it must not bill extra evaluations.
	if evalsTraced != plain.Evaluations {
		t.Fatalf("explanation replay billed evaluations: %d vs %d", evalsTraced, plain.Evaluations)
	}
}

// TestTraceSampleValidation rejects out-of-range rates up front.
func TestTraceSampleValidation(t *testing.T) {
	for _, bad := range []float64{-0.5, 1.5} {
		p := testProblem(1)
		p.TraceSample = bad
		if _, err := Run(p, &Greedy{}); err == nil {
			t.Errorf("TraceSample %v accepted", bad)
		}
	}
}

// TestExplanationPartialSample checks sub-unit sampling: the sampled
// count lands strictly between zero and the replication count for a
// seed/rate pair chosen to split, and the rest of the report is
// consistent with it.
func TestExplanationPartialSample(t *testing.T) {
	p := tracedProblem(5)
	p.Reps = 12
	p.TraceSample = 0.5
	res, err := Run(p, &Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range res.Explanations {
		if ex.Sampled <= 0 || ex.Sampled >= p.Reps {
			t.Fatalf("%s: sampled %d of %d at rate 0.5 — want a strict subset (pick another seed if the digest draw degenerated)", ex.Candidate, ex.Sampled, p.Reps)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
