package optimize

import (
	"testing"

	"diversify/internal/diversity"
	"diversify/internal/exploits"
	"diversify/internal/malware"
	"diversify/internal/topology"
)

func benchProblem() Problem {
	topo := topology.NewTieredSCADA(topology.DefaultTieredSpec())
	cat := exploits.StuxnetCatalog()
	opts := diversity.EnumerateOptions(topo, cat,
		[]exploits.Class{exploits.ClassOS, exploits.ClassProtocol},
		func(n topology.Node) bool { return n.Kind != topology.KindCorporatePC })
	return Problem{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(),
		Options: opts,
		Cost:    diversity.CostModel{PlatformCost: 5, NodeCost: 2},
		Budget:  30,
		Horizon: 168, Reps: 8, Seed: 1,
		Iterations: 8,
	}
}

// BenchmarkOptimizeGreedy measures a bounded greedy search end to end —
// the optimizer workload the perf trajectory tracks.
func BenchmarkOptimizeGreedy(b *testing.B) {
	o, err := ByName("greedy")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchProblem(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalCache isolates the memoized path: scoring an
// already-simulated candidate must cost a fingerprint plus a map lookup,
// no replications.
func BenchmarkEvalCache(b *testing.B) {
	p := benchProblem()
	p.normalize()
	if err := p.validate(); err != nil {
		b.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		b.Fatal(err)
	}
	a := p.base()
	p.Options[0].Apply(a)
	p.Options[len(p.Options)-1].Apply(a)
	cand := Candidate{A: a, Rot: -1}
	if _, err := ev.Score(cand); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Score(cand); err != nil {
			b.Fatal(err)
		}
	}
	if ev.hits != b.N {
		b.Fatalf("expected %d cache hits, got %d", b.N, ev.hits)
	}
}

// BenchmarkEvalMiss measures one full candidate evaluation (replications
// across the worker pool with campaign reuse) for contrast with the hit
// path.
func BenchmarkEvalMiss(b *testing.B) {
	p := benchProblem()
	p.normalize()
	if err := p.validate(); err != nil {
		b.Fatal(err)
	}
	ev, err := newEvaluator(&p)
	if err != nil {
		b.Fatal(err)
	}
	cand := Candidate{A: p.base(), Rot: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delete(ev.cache, cand.fingerprint(ev.rotFPs))
		ev.archive = ev.archive[:0]
		if _, err := ev.Score(cand); err != nil {
			b.Fatal(err)
		}
	}
}

// gridProblem is a bounded greedy search on a generated 100-substation
// meshed grid: RTU firmware + protocol switches, a few replications per
// candidate. It exercises the scale path (hundreds of options, ~600-node
// field network) without turning the bench into a measurement job.
func gridProblem() Problem {
	topo := topology.NewMeshedGrid(topology.DefaultMeshedGridSpec(100))
	cat := exploits.StuxnetCatalog()
	opts := diversity.EnumerateOptions(topo, cat,
		[]exploits.Class{exploits.ClassPLCFirmware, exploits.ClassProtocol},
		func(n topology.Node) bool { return n.Kind == topology.KindPLC })
	return Problem{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(),
		Options: opts,
		Cost:    diversity.CostModel{PlatformCost: 5, NodeCost: 2},
		Budget:  15,
		Horizon: 168, Reps: 4, Seed: 1,
		Iterations: 1,
	}
}

// BenchmarkOptimizeGrid measures one exhaustive greedy round over the
// grid-scale option space (screening disabled — the historical workload
// `-topo grid:N` used to dispatch; contrast BenchmarkScreenedGreedy).
func BenchmarkOptimizeGrid(b *testing.B) {
	o, err := ByName("greedy")
	if err != nil {
		b.Fatal(err)
	}
	p := gridProblem()
	p.ScreenTop = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScreenedGreedy is the same grid-scale greedy round under the
// default surrogate screen: only the top quarter of the options is
// simulated, which is what `-topo grid:N` now dispatches by default.
func BenchmarkScreenedGreedy(b *testing.B) {
	o, err := ByName("greedy")
	if err != nil {
		b.Fatal(err)
	}
	p := gridProblem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoGrid measures the NSGA-II multi-objective search on
// the grid-scale problem: a few generations over the cost × success ×
// detection front, memoized evaluations included.
func BenchmarkParetoGrid(b *testing.B) {
	o, err := ByName("pareto")
	if err != nil {
		b.Fatal(err)
	}
	p := gridProblem()
	p.Iterations = 2
	p.Population = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizePortfolio measures the portfolio strategy (greedy →
// seeded anneal → seeded genetic) on the reference plant.
func BenchmarkOptimizePortfolio(b *testing.B) {
	o, err := ByName("portfolio")
	if err != nil {
		b.Fatal(err)
	}
	p := benchProblem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, o); err != nil {
			b.Fatal(err)
		}
	}
}
