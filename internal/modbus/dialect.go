package modbus

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// Dialect transforms PDUs on the wire. The standard dialect is the
// identity; a diversified dialect permutes function codes and
// authenticates payloads with a shared key, so that a peer speaking the
// wrong dialect is rejected.
//
// Wrap is applied by the sender after building a semantic PDU; Unwrap is
// applied by the receiver before interpreting it. Unwrap must reject
// frames produced under a different dialect/key.
type Dialect interface {
	// Name identifies the dialect in logs and reports.
	Name() string
	// Wrap encodes a semantic PDU into its on-wire form.
	Wrap(p PDU) PDU
	// Unwrap decodes an on-wire PDU; it returns ErrDialectAuth (possibly
	// wrapped) when the frame does not verify under this dialect.
	Unwrap(p PDU) (PDU, error)
}

// StandardDialect is plain Modbus: no transformation, no authentication.
type StandardDialect struct{}

var _ Dialect = StandardDialect{}

// Name returns "standard".
func (StandardDialect) Name() string { return "standard" }

// Wrap returns p unchanged.
func (StandardDialect) Wrap(p PDU) PDU { return p }

// Unwrap returns p unchanged. Plain Modbus accepts anything — that IS the
// vulnerability (unauthenticated writes, catalog entry MODBUS-WRITE).
func (StandardDialect) Unwrap(p PDU) (PDU, error) { return p, nil }

// tagSize is the truncated HMAC length appended by DiversifiedDialect.
const tagSize = 8

// DiversifiedDialect is a keyed protocol variant:
//
//   - function codes are permuted by a key-derived bijection over 1..127,
//     so standard-dialect traffic decodes to nonsense functions;
//   - every PDU carries a truncated HMAC-SHA256 tag over function+data,
//     so forged or replay-corrupted frames fail authentication.
//
// Two endpoints configured with the same key interoperate; everyone else
// (including a worm with a standard-dialect payload) is rejected at
// Unwrap with ErrDialectAuth.
type DiversifiedDialect struct {
	key  []byte
	perm [128]byte // function-code permutation (index 0 unused)
	inv  [128]byte
}

var _ Dialect = (*DiversifiedDialect)(nil)

// NewDiversifiedDialect derives a dialect from the shared key.
func NewDiversifiedDialect(key []byte) *DiversifiedDialect {
	d := &DiversifiedDialect{key: append([]byte(nil), key...)}
	// Key-derived Fisher-Yates over codes 1..127 using HMAC as a PRF.
	var codes [127]byte
	for i := range codes {
		codes[i] = byte(i + 1)
	}
	prf := hmac.New(sha256.New, key)
	counter := 0
	next := func(bound int) int {
		prf.Reset()
		prf.Write([]byte{byte(counter), byte(counter >> 8), 'p'})
		counter++
		sum := prf.Sum(nil)
		v := int(sum[0])<<8 | int(sum[1])
		return v % bound
	}
	for i := len(codes) - 1; i > 0; i-- {
		j := next(i + 1)
		codes[i], codes[j] = codes[j], codes[i]
	}
	for i, c := range codes {
		d.perm[i+1] = c
		d.inv[c] = byte(i + 1)
	}
	return d
}

// Name returns "diversified".
func (d *DiversifiedDialect) Name() string { return "diversified" }

// mac computes the truncated authentication tag for a semantic PDU.
func (d *DiversifiedDialect) mac(function byte, data []byte) []byte {
	m := hmac.New(sha256.New, d.key)
	m.Write([]byte{function})
	m.Write(data)
	return m.Sum(nil)[:tagSize]
}

// Wrap permutes the function code and appends the authentication tag.
// Exception responses keep the exception flag bit and permute the base
// code, so legitimate peers can still classify errors.
func (d *DiversifiedDialect) Wrap(p PDU) PDU {
	base := p.Function &^ exceptionFlag
	flag := p.Function & exceptionFlag
	wireFn := d.perm[base&0x7F] | flag
	tag := d.mac(p.Function, p.Data)
	data := make([]byte, 0, len(p.Data)+tagSize)
	data = append(data, p.Data...)
	data = append(data, tag...)
	return PDU{Function: wireFn, Data: data}
}

// Unwrap verifies the tag and restores the semantic function code.
func (d *DiversifiedDialect) Unwrap(p PDU) (PDU, error) {
	if len(p.Data) < tagSize {
		return PDU{}, fmt.Errorf("%w: frame too short for tag", ErrDialectAuth)
	}
	base := p.Function &^ exceptionFlag
	flag := p.Function & exceptionFlag
	semFn := d.inv[base&0x7F]
	if semFn == 0 {
		return PDU{}, fmt.Errorf("%w: unmapped function code 0x%02x", ErrDialectAuth, p.Function)
	}
	semFn |= flag
	payload := p.Data[:len(p.Data)-tagSize]
	tag := p.Data[len(p.Data)-tagSize:]
	if !hmac.Equal(tag, d.mac(semFn, payload)) {
		return PDU{}, fmt.Errorf("%w: bad tag", ErrDialectAuth)
	}
	out := PDU{Function: semFn, Data: append([]byte(nil), payload...)}
	return out, nil
}
