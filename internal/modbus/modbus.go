// Package modbus implements a Modbus/TCP-class SCADA field protocol: MBAP
// framing, the common register/coil function codes, a thread-safe data
// model, and a client/server pair that run over any net.Conn.
//
// Beyond the standard dialect it implements a *diversified* dialect
// (function-code permutation + authenticated frames derived from a shared
// key). This is the repository's concrete stand-in for the paper's
// component diversification at the protocol level: a worm carrying a
// standard-dialect exploit payload fails against endpoints speaking a
// diversified dialect, exactly the "different machines need different
// exploits" effect (experiment E10 quantifies it).
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol limits from the Modbus specification.
const (
	maxPDUSize     = 253
	maxReadCount   = 125 // registers per read
	maxWriteCount  = 123 // registers per write
	mbapHeaderSize = 7
)

// Function codes (subset).
const (
	FuncReadCoils          byte = 0x01
	FuncReadDiscreteInputs byte = 0x02
	FuncReadHolding        byte = 0x03
	FuncReadInput          byte = 0x04
	FuncWriteSingleCoil    byte = 0x05
	FuncWriteSingleReg     byte = 0x06
	FuncWriteMultipleRegs  byte = 0x10
)

// exceptionFlag marks a response PDU as an exception.
const exceptionFlag byte = 0x80

// Exception codes.
const (
	ExIllegalFunction    byte = 0x01
	ExIllegalDataAddress byte = 0x02
	ExIllegalDataValue   byte = 0x03
	ExServerFailure      byte = 0x04
)

// Errors returned by the codec and client.
var (
	ErrFrameTooLarge = errors.New("modbus: frame exceeds maximum PDU size")
	ErrShortFrame    = errors.New("modbus: short frame")
	ErrBadProtocolID = errors.New("modbus: bad MBAP protocol identifier")
	ErrTxnMismatch   = errors.New("modbus: transaction ID mismatch")
	ErrDialectAuth   = errors.New("modbus: dialect authentication failure")
)

// ExceptionError is a Modbus exception response surfaced by the client.
type ExceptionError struct {
	Function byte // original function code
	Code     byte
}

func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: exception 0x%02x for function 0x%02x", e.Code, e.Function)
}

// PDU is a protocol data unit: function code plus payload.
type PDU struct {
	Function byte
	Data     []byte
}

// IsException reports whether the PDU is an exception response.
func (p PDU) IsException() bool { return p.Function&exceptionFlag != 0 }

// ExceptionPDU builds an exception response for the given request
// function.
func ExceptionPDU(reqFunction, code byte) PDU {
	return PDU{Function: reqFunction | exceptionFlag, Data: []byte{code}}
}

// Frame is a full MBAP-framed message.
type Frame struct {
	Transaction uint16
	Unit        byte
	PDU         PDU
}

// EncodeFrame serializes a frame to wire format.
func EncodeFrame(f Frame) ([]byte, error) {
	pduLen := 1 + len(f.PDU.Data)
	if pduLen > maxPDUSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, pduLen)
	}
	buf := make([]byte, mbapHeaderSize+pduLen)
	binary.BigEndian.PutUint16(buf[0:2], f.Transaction)
	binary.BigEndian.PutUint16(buf[2:4], 0) // protocol identifier
	binary.BigEndian.PutUint16(buf[4:6], uint16(1+pduLen))
	buf[6] = f.Unit
	buf[7] = f.PDU.Function
	copy(buf[8:], f.PDU.Data)
	return buf, nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [mbapHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if binary.BigEndian.Uint16(hdr[2:4]) != 0 {
		return Frame{}, ErrBadProtocolID
	}
	length := binary.BigEndian.Uint16(hdr[4:6])
	if length < 2 {
		return Frame{}, ErrShortFrame
	}
	if int(length)-1 > maxPDUSize {
		return Frame{}, fmt.Errorf("%w: advertised %d bytes", ErrFrameTooLarge, length-1)
	}
	body := make([]byte, length-1) // length counts the unit byte
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	if len(body) < 1 {
		return Frame{}, ErrShortFrame
	}
	return Frame{
		Transaction: binary.BigEndian.Uint16(hdr[0:2]),
		Unit:        hdr[6],
		PDU:         PDU{Function: body[0], Data: body[1:]},
	}, nil
}

// ---- Request/response payload builders and parsers. ----

// ReadRequest builds the payload of a read request (holding/input/coils).
func ReadRequest(start, count uint16) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], start)
	binary.BigEndian.PutUint16(b[2:4], count)
	return b
}

// ParseReadRequest decodes a read request payload.
func ParseReadRequest(data []byte) (start, count uint16, err error) {
	if len(data) != 4 {
		return 0, 0, ErrShortFrame
	}
	return binary.BigEndian.Uint16(data[0:2]), binary.BigEndian.Uint16(data[2:4]), nil
}

// RegistersToBytes serializes register values for a read response.
func RegistersToBytes(regs []uint16) []byte {
	out := make([]byte, 1+2*len(regs))
	out[0] = byte(2 * len(regs))
	for i, r := range regs {
		binary.BigEndian.PutUint16(out[1+2*i:], r)
	}
	return out
}

// BytesToRegisters parses a read-registers response payload.
func BytesToRegisters(data []byte) ([]uint16, error) {
	if len(data) < 1 || int(data[0]) != len(data)-1 || data[0]%2 != 0 {
		return nil, ErrShortFrame
	}
	regs := make([]uint16, data[0]/2)
	for i := range regs {
		regs[i] = binary.BigEndian.Uint16(data[1+2*i:])
	}
	return regs, nil
}

// CoilsToBytes packs coil states for a read response.
func CoilsToBytes(coils []bool) []byte {
	nBytes := (len(coils) + 7) / 8
	out := make([]byte, 1+nBytes)
	out[0] = byte(nBytes)
	for i, c := range coils {
		if c {
			out[1+i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// BytesToCoils unpacks count coils from a read response payload.
func BytesToCoils(data []byte, count int) ([]bool, error) {
	if len(data) < 1 || int(data[0]) != len(data)-1 {
		return nil, ErrShortFrame
	}
	if (count+7)/8 != int(data[0]) {
		return nil, ErrShortFrame
	}
	out := make([]bool, count)
	for i := range out {
		out[i] = data[1+i/8]&(1<<(i%8)) != 0
	}
	return out, nil
}

// WriteSingleRequest builds the payload for write-single-register or
// write-single-coil (value 0xFF00/0x0000 for coils per spec).
func WriteSingleRequest(addr, value uint16) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], addr)
	binary.BigEndian.PutUint16(b[2:4], value)
	return b
}

// ParseWriteSingle decodes a write-single payload (request and echo
// response share the format).
func ParseWriteSingle(data []byte) (addr, value uint16, err error) {
	if len(data) != 4 {
		return 0, 0, ErrShortFrame
	}
	return binary.BigEndian.Uint16(data[0:2]), binary.BigEndian.Uint16(data[2:4]), nil
}

// WriteMultipleRequest builds the payload for write-multiple-registers.
func WriteMultipleRequest(start uint16, values []uint16) []byte {
	b := make([]byte, 5+2*len(values))
	binary.BigEndian.PutUint16(b[0:2], start)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(values)))
	b[4] = byte(2 * len(values))
	for i, v := range values {
		binary.BigEndian.PutUint16(b[5+2*i:], v)
	}
	return b
}

// ParseWriteMultiple decodes a write-multiple-registers request payload.
func ParseWriteMultiple(data []byte) (start uint16, values []uint16, err error) {
	if len(data) < 5 {
		return 0, nil, ErrShortFrame
	}
	start = binary.BigEndian.Uint16(data[0:2])
	count := binary.BigEndian.Uint16(data[2:4])
	byteCount := int(data[4])
	if int(count) > maxWriteCount || byteCount != 2*int(count) || len(data) != 5+byteCount {
		return 0, nil, ErrShortFrame
	}
	values = make([]uint16, count)
	for i := range values {
		values[i] = binary.BigEndian.Uint16(data[5+2*i:])
	}
	return start, values, nil
}
