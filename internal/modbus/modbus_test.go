package modbus

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Transaction: 0xBEEF, Unit: 3, PDU: PDU{Function: FuncReadHolding, Data: []byte{0, 1, 0, 2}}}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Transaction != f.Transaction || got.Unit != f.Unit ||
		got.PDU.Function != f.PDU.Function || !bytes.Equal(got.PDU.Data, f.PDU.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameTooLarge(t *testing.T) {
	f := Frame{PDU: PDU{Function: 1, Data: make([]byte, 300)}}
	if _, err := EncodeFrame(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Bad protocol ID.
	raw := []byte{0, 1, 0, 9, 0, 2, 1, 3}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadProtocolID) {
		t.Fatalf("err = %v", err)
	}
	// Truncated.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 1})); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Length < 2.
	raw = []byte{0, 1, 0, 0, 0, 1, 1}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestPayloadCodecs(t *testing.T) {
	regs := []uint16{1, 0xFFFF, 42}
	parsed, err := BytesToRegisters(RegistersToBytes(regs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range regs {
		if parsed[i] != regs[i] {
			t.Fatalf("registers round trip: %v vs %v", parsed, regs)
		}
	}
	coils := []bool{true, false, true, true, false, false, false, true, true}
	cParsed, err := BytesToCoils(CoilsToBytes(coils), len(coils))
	if err != nil {
		t.Fatal(err)
	}
	for i := range coils {
		if cParsed[i] != coils[i] {
			t.Fatalf("coils round trip: %v vs %v", cParsed, coils)
		}
	}
	start, values, err := ParseWriteMultiple(WriteMultipleRequest(7, []uint16{9, 8}))
	if err != nil || start != 7 || len(values) != 2 || values[0] != 9 {
		t.Fatalf("write multiple round trip: start=%d values=%v err=%v", start, values, err)
	}
}

func TestMemoryModelHandle(t *testing.T) {
	m := NewMemoryModel(10, 10, 16, 16)
	// Write then read a holding register.
	resp := m.Handle(PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(3, 1234)})
	if resp.IsException() {
		t.Fatalf("write exception: %+v", resp)
	}
	resp = m.Handle(PDU{Function: FuncReadHolding, Data: ReadRequest(3, 1)})
	regs, err := BytesToRegisters(resp.Data)
	if err != nil || regs[0] != 1234 {
		t.Fatalf("read back: %v err=%v", regs, err)
	}
	// Out-of-range read → illegal address.
	resp = m.Handle(PDU{Function: FuncReadHolding, Data: ReadRequest(9, 5)})
	if !resp.IsException() || resp.Data[0] != ExIllegalDataAddress {
		t.Fatalf("expected illegal-address exception, got %+v", resp)
	}
	// Unknown function → illegal function.
	resp = m.Handle(PDU{Function: 0x2B})
	if !resp.IsException() || resp.Data[0] != ExIllegalFunction {
		t.Fatalf("expected illegal-function exception, got %+v", resp)
	}
	// Coil write with bad value → illegal value.
	resp = m.Handle(PDU{Function: FuncWriteSingleCoil, Data: WriteSingleRequest(0, 0x1234)})
	if !resp.IsException() || resp.Data[0] != ExIllegalDataValue {
		t.Fatalf("expected illegal-value exception, got %+v", resp)
	}
	// Valid coil write.
	resp = m.Handle(PDU{Function: FuncWriteSingleCoil, Data: WriteSingleRequest(2, 0xFF00)})
	if resp.IsException() {
		t.Fatalf("coil write failed: %+v", resp)
	}
	if on, err := m.Coil(2); err != nil || !on {
		t.Fatalf("coil state: %v %v", on, err)
	}
	// Multiple register write.
	resp = m.Handle(PDU{Function: FuncWriteMultipleRegs, Data: WriteMultipleRequest(5, []uint16{1, 2, 3})})
	if resp.IsException() {
		t.Fatalf("multi write failed: %+v", resp)
	}
	if v, err := m.Holding(6); err != nil || v != 2 {
		t.Fatalf("holding[6] = %v err=%v", v, err)
	}
}

func TestMemoryModelProcessSide(t *testing.T) {
	m := NewMemoryModel(4, 4, 4, 4)
	if err := m.SetInput(1, 777); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInput(99, 1); err == nil {
		t.Fatal("out-of-range input accepted")
	}
	if err := m.SetDiscrete(0, true); err != nil {
		t.Fatal(err)
	}
	resp := m.Handle(PDU{Function: FuncReadInput, Data: ReadRequest(1, 1)})
	regs, err := BytesToRegisters(resp.Data)
	if err != nil || regs[0] != 777 {
		t.Fatalf("input read: %v %v", regs, err)
	}
	resp = m.Handle(PDU{Function: FuncReadDiscreteInputs, Data: ReadRequest(0, 1)})
	bits, err := BytesToCoils(resp.Data, 1)
	if err != nil || !bits[0] {
		t.Fatalf("discrete read: %v %v", bits, err)
	}
}

func TestDialectRoundTrip(t *testing.T) {
	d := NewDiversifiedDialect([]byte("site-key-1"))
	p := PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(1, 2)}
	wire := d.Wrap(p)
	if wire.Function == p.Function && bytes.Equal(wire.Data, p.Data) {
		t.Fatal("diversified dialect is a no-op")
	}
	back, err := d.Unwrap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Function != p.Function || !bytes.Equal(back.Data, p.Data) {
		t.Fatalf("unwrap mismatch: %+v vs %+v", back, p)
	}
}

func TestDialectRejectsStandardTraffic(t *testing.T) {
	d := NewDiversifiedDialect([]byte("site-key-1"))
	std := PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(1, 0xDEAD)}
	if _, err := d.Unwrap(std); !errors.Is(err, ErrDialectAuth) {
		t.Fatalf("standard traffic accepted by diversified dialect: %v", err)
	}
}

func TestDialectRejectsWrongKey(t *testing.T) {
	d1 := NewDiversifiedDialect([]byte("site-key-1"))
	d2 := NewDiversifiedDialect([]byte("site-key-2"))
	wire := d1.Wrap(PDU{Function: FuncReadHolding, Data: ReadRequest(0, 1)})
	if _, err := d2.Unwrap(wire); !errors.Is(err, ErrDialectAuth) {
		t.Fatalf("cross-key traffic accepted: %v", err)
	}
}

func TestDialectRejectsTamperedPayload(t *testing.T) {
	d := NewDiversifiedDialect([]byte("k"))
	wire := d.Wrap(PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(1, 1)})
	wire.Data[1] ^= 0xFF // flip a payload byte, keep the tag
	if _, err := d.Unwrap(wire); !errors.Is(err, ErrDialectAuth) {
		t.Fatalf("tampered frame accepted: %v", err)
	}
}

func TestDialectExceptionFlagPreserved(t *testing.T) {
	d := NewDiversifiedDialect([]byte("k"))
	exc := ExceptionPDU(FuncReadHolding, ExIllegalDataAddress)
	wire := d.Wrap(exc)
	if !wire.IsException() {
		t.Fatal("wrapped exception lost its flag")
	}
	back, err := d.Unwrap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsException() || back.Function&^0x80 != FuncReadHolding {
		t.Fatalf("unwrapped exception = %+v", back)
	}
}

// startPipeServer wires a server to one end of a net.Pipe and returns a
// client on the other end.
func startPipeServer(t *testing.T, dialect Dialect, clientDialect Dialect) (*Client, *MemoryModel, func()) {
	t.Helper()
	model := NewMemoryModel(64, 64, 64, 64)
	srv := NewServer(model, dialect)
	serverConn, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(serverConn)
		close(done)
	}()
	client := NewClient(clientConn, clientDialect, 1, 0)
	cleanup := func() {
		if err := client.Close(); err != nil {
			t.Logf("client close: %v", err)
		}
		<-done
	}
	return client, model, cleanup
}

func TestClientServerStandard(t *testing.T) {
	client, model, cleanup := startPipeServer(t, StandardDialect{}, StandardDialect{})
	defer cleanup()
	if err := client.WriteRegister(10, 4242); err != nil {
		t.Fatal(err)
	}
	regs, err := client.ReadHolding(10, 1)
	if err != nil || regs[0] != 4242 {
		t.Fatalf("read holding: %v %v", regs, err)
	}
	if v, err := model.Holding(10); err != nil || v != 4242 {
		t.Fatalf("model state: %v %v", v, err)
	}
	if err := client.WriteCoil(5, true); err != nil {
		t.Fatal(err)
	}
	coils, err := client.ReadCoils(5, 1)
	if err != nil || !coils[0] {
		t.Fatalf("coils: %v %v", coils, err)
	}
	if err := client.WriteRegisters(20, []uint16{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	regs, err = client.ReadHolding(20, 3)
	if err != nil || regs[2] != 9 {
		t.Fatalf("multi write/read: %v %v", regs, err)
	}
	// Input registers come from the process side.
	if err := model.SetInput(2, 512); err != nil {
		t.Fatal(err)
	}
	in, err := client.ReadInput(2, 1)
	if err != nil || in[0] != 512 {
		t.Fatalf("read input: %v %v", in, err)
	}
}

func TestClientServerDiversified(t *testing.T) {
	key := []byte("plant-7-secret")
	client, _, cleanup := startPipeServer(t,
		NewDiversifiedDialect(key), NewDiversifiedDialect(key))
	defer cleanup()
	if err := client.WriteRegister(1, 99); err != nil {
		t.Fatal(err)
	}
	regs, err := client.ReadHolding(1, 1)
	if err != nil || regs[0] != 99 {
		t.Fatalf("diversified round trip: %v %v", regs, err)
	}
}

func TestAttackerRejectedByDiversifiedServer(t *testing.T) {
	// Attacker speaks standard Modbus to a diversified endpoint — the
	// MODBUS-WRITE exploit path must fail.
	client, model, cleanup := startPipeServer(t,
		NewDiversifiedDialect([]byte("plant-7-secret")), StandardDialect{})
	defer cleanup()
	err := client.WriteRegister(0, 0xDEAD)
	var exc *ExceptionError
	if !errors.As(err, &exc) {
		t.Fatalf("attack write error = %v, want exception", err)
	}
	if v, mErr := model.Holding(0); mErr != nil || v != 0 {
		t.Fatalf("attack write reached the model: %v %v", v, mErr)
	}
}

func TestClientServerOverTCP(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	model := NewMemoryModel(16, 16, 16, 16)
	srv := NewServer(model, StandardDialect{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, StandardDialect{}, 1, 2*time.Second)
	if err := client.WriteRegister(4, 77); err != nil {
		t.Fatal(err)
	}
	regs, err := client.ReadHolding(4, 1)
	if err != nil || regs[0] != 77 {
		t.Fatalf("TCP round trip: %v %v", regs, err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

func TestClientExceptionSurfaced(t *testing.T) {
	client, _, cleanup := startPipeServer(t, StandardDialect{}, StandardDialect{})
	defer cleanup()
	_, err := client.ReadHolding(1000, 5) // out of range
	var exc *ExceptionError
	if !errors.As(err, &exc) || exc.Code != ExIllegalDataAddress {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteRegistersValidation(t *testing.T) {
	client, _, cleanup := startPipeServer(t, StandardDialect{}, StandardDialect{})
	defer cleanup()
	if err := client.WriteRegisters(0, nil); err == nil {
		t.Fatal("empty write accepted")
	}
	if err := client.WriteRegisters(0, make([]uint16, 200)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

// Property: any PDU survives the diversified wrap/unwrap cycle.
func TestQuickDialectRoundTrip(t *testing.T) {
	d := NewDiversifiedDialect([]byte("prop-key"))
	f := func(fn byte, data []byte) bool {
		fn = fn%0x7F + 1
		if len(data) > 180 {
			data = data[:180]
		}
		p := PDU{Function: fn, Data: data}
		back, err := d.Unwrap(d.Wrap(p))
		if err != nil {
			return false
		}
		return back.Function == p.Function && bytes.Equal(back.Data, p.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: frame codec round-trips arbitrary PDUs.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(txn uint16, unit byte, fn byte, data []byte) bool {
		if len(data) > 200 {
			data = data[:200]
		}
		fr := Frame{Transaction: txn, Unit: unit, PDU: PDU{Function: fn, Data: data}}
		raw, err := EncodeFrame(fr)
		if err != nil {
			return false
		}
		got, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return got.Transaction == txn && got.Unit == unit &&
			got.PDU.Function == fn && bytes.Equal(got.PDU.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := Frame{Transaction: 1, Unit: 1, PDU: PDU{Function: FuncReadHolding, Data: ReadRequest(0, 10)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := EncodeFrame(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDialectWrapUnwrap(b *testing.B) {
	d := NewDiversifiedDialect([]byte("bench-key"))
	p := PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(1, 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Unwrap(d.Wrap(p)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadDiscreteInputsClient(t *testing.T) {
	client, model, cleanup := startPipeServer(t, StandardDialect{}, StandardDialect{})
	defer cleanup()
	if err := model.SetDiscrete(3, true); err != nil {
		t.Fatal(err)
	}
	bits, err := client.ReadDiscreteInputs(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bits[0] || !bits[1] || bits[2] {
		t.Fatalf("discrete inputs = %v, want [false true false]", bits)
	}
}
