package modbus

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a synchronous Modbus client over a single connection. It is
// safe for concurrent use; requests are serialized.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	dialect Dialect
	unit    byte
	txn     uint16
	timeout time.Duration
}

// NewClient wraps an established connection. A zero timeout disables
// deadlines (useful with net.Pipe in tests and simulations).
func NewClient(conn net.Conn, dialect Dialect, unit byte, timeout time.Duration) *Client {
	return &Client{conn: conn, dialect: dialect, unit: unit, timeout: timeout}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one semantic PDU and returns the semantic response.
func (c *Client) roundTrip(req PDU) (PDU, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txn++
	txn := c.txn
	wire := c.dialect.Wrap(req)
	out, err := EncodeFrame(Frame{Transaction: txn, Unit: c.unit, PDU: wire})
	if err != nil {
		return PDU{}, err
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return PDU{}, fmt.Errorf("modbus: set deadline: %w", err)
		}
	}
	if _, err := c.conn.Write(out); err != nil {
		return PDU{}, fmt.Errorf("modbus: write: %w", err)
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return PDU{}, fmt.Errorf("modbus: read: %w", err)
	}
	if resp.Transaction != txn {
		return PDU{}, fmt.Errorf("%w: sent %d got %d", ErrTxnMismatch, txn, resp.Transaction)
	}
	// An exception to a dialect-auth failure comes back in standard
	// framing (flag set, single code byte); try dialect unwrap first and
	// fall back to raw exception interpretation.
	sem, err := c.dialect.Unwrap(resp.PDU)
	if err != nil {
		if resp.PDU.IsException() && len(resp.PDU.Data) == 1 {
			return PDU{}, &ExceptionError{Function: resp.PDU.Function &^ exceptionFlag, Code: resp.PDU.Data[0]}
		}
		return PDU{}, err
	}
	if sem.IsException() {
		code := byte(0)
		if len(sem.Data) > 0 {
			code = sem.Data[0]
		}
		return PDU{}, &ExceptionError{Function: sem.Function &^ exceptionFlag, Code: code}
	}
	return sem, nil
}

// ReadHolding reads count holding registers starting at start.
func (c *Client) ReadHolding(start, count uint16) ([]uint16, error) {
	resp, err := c.roundTrip(PDU{Function: FuncReadHolding, Data: ReadRequest(start, count)})
	if err != nil {
		return nil, err
	}
	return BytesToRegisters(resp.Data)
}

// ReadInput reads count input registers starting at start.
func (c *Client) ReadInput(start, count uint16) ([]uint16, error) {
	resp, err := c.roundTrip(PDU{Function: FuncReadInput, Data: ReadRequest(start, count)})
	if err != nil {
		return nil, err
	}
	return BytesToRegisters(resp.Data)
}

// ReadCoils reads count coils starting at start.
func (c *Client) ReadCoils(start, count uint16) ([]bool, error) {
	resp, err := c.roundTrip(PDU{Function: FuncReadCoils, Data: ReadRequest(start, count)})
	if err != nil {
		return nil, err
	}
	return BytesToCoils(resp.Data, int(count))
}

// ReadDiscreteInputs reads count discrete inputs starting at start.
func (c *Client) ReadDiscreteInputs(start, count uint16) ([]bool, error) {
	resp, err := c.roundTrip(PDU{Function: FuncReadDiscreteInputs, Data: ReadRequest(start, count)})
	if err != nil {
		return nil, err
	}
	return BytesToCoils(resp.Data, int(count))
}

// WriteRegister writes one holding register.
func (c *Client) WriteRegister(addr, value uint16) error {
	_, err := c.roundTrip(PDU{Function: FuncWriteSingleReg, Data: WriteSingleRequest(addr, value)})
	return err
}

// WriteCoil sets one coil.
func (c *Client) WriteCoil(addr uint16, on bool) error {
	v := uint16(0x0000)
	if on {
		v = 0xFF00
	}
	_, err := c.roundTrip(PDU{Function: FuncWriteSingleCoil, Data: WriteSingleRequest(addr, v)})
	return err
}

// WriteRegisters writes multiple holding registers starting at start.
func (c *Client) WriteRegisters(start uint16, values []uint16) error {
	if len(values) == 0 || len(values) > maxWriteCount {
		return fmt.Errorf("modbus: write count %d outside 1..%d", len(values), maxWriteCount)
	}
	_, err := c.roundTrip(PDU{Function: FuncWriteMultipleRegs, Data: WriteMultipleRequest(start, values)})
	return err
}
