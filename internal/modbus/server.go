package modbus

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// MemoryModel is a thread-safe Modbus data model: holding registers,
// input registers, coils and discrete inputs, each a fixed-size bank.
type MemoryModel struct {
	mu       sync.RWMutex
	holding  []uint16
	input    []uint16
	coils    []bool
	discrete []bool
}

// NewMemoryModel allocates banks of the given sizes.
func NewMemoryModel(holdingN, inputN, coilN, discreteN int) *MemoryModel {
	return &MemoryModel{
		holding:  make([]uint16, holdingN),
		input:    make([]uint16, inputN),
		coils:    make([]bool, coilN),
		discrete: make([]bool, discreteN),
	}
}

// SetInput stores an input register (the process side feeding sensor
// values).
func (m *MemoryModel) SetInput(addr int, v uint16) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= len(m.input) {
		return fmt.Errorf("modbus: input register %d out of range", addr)
	}
	m.input[addr] = v
	return nil
}

// SetDiscrete stores a discrete input bit.
func (m *MemoryModel) SetDiscrete(addr int, v bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= len(m.discrete) {
		return fmt.Errorf("modbus: discrete input %d out of range", addr)
	}
	m.discrete[addr] = v
	return nil
}

// Holding reads a holding register (the process side reading setpoints).
func (m *MemoryModel) Holding(addr int) (uint16, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if addr < 0 || addr >= len(m.holding) {
		return 0, fmt.Errorf("modbus: holding register %d out of range", addr)
	}
	return m.holding[addr], nil
}

// SetHolding stores a holding register directly (local logic, not wire).
func (m *MemoryModel) SetHolding(addr int, v uint16) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= len(m.holding) {
		return fmt.Errorf("modbus: holding register %d out of range", addr)
	}
	m.holding[addr] = v
	return nil
}

// Coil reads a coil state.
func (m *MemoryModel) Coil(addr int) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if addr < 0 || addr >= len(m.coils) {
		return false, fmt.Errorf("modbus: coil %d out of range", addr)
	}
	return m.coils[addr], nil
}

// Handle executes a request PDU against the model and returns the
// response PDU (a normal response or an exception).
func (m *MemoryModel) Handle(req PDU) PDU {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch req.Function {
	case FuncReadHolding, FuncReadInput:
		start, count, err := ParseReadRequest(req.Data)
		if err != nil || count == 0 || count > maxReadCount {
			return ExceptionPDU(req.Function, ExIllegalDataValue)
		}
		bank := m.holding
		if req.Function == FuncReadInput {
			bank = m.input
		}
		if int(start)+int(count) > len(bank) {
			return ExceptionPDU(req.Function, ExIllegalDataAddress)
		}
		return PDU{Function: req.Function, Data: RegistersToBytes(bank[start : start+count])}

	case FuncReadCoils, FuncReadDiscreteInputs:
		start, count, err := ParseReadRequest(req.Data)
		if err != nil || count == 0 || count > 2000 {
			return ExceptionPDU(req.Function, ExIllegalDataValue)
		}
		bank := m.coils
		if req.Function == FuncReadDiscreteInputs {
			bank = m.discrete
		}
		if int(start)+int(count) > len(bank) {
			return ExceptionPDU(req.Function, ExIllegalDataAddress)
		}
		return PDU{Function: req.Function, Data: CoilsToBytes(bank[start : start+count])}

	case FuncWriteSingleReg:
		addr, value, err := ParseWriteSingle(req.Data)
		if err != nil {
			return ExceptionPDU(req.Function, ExIllegalDataValue)
		}
		if int(addr) >= len(m.holding) {
			return ExceptionPDU(req.Function, ExIllegalDataAddress)
		}
		m.holding[addr] = value
		return PDU{Function: req.Function, Data: append([]byte(nil), req.Data...)}

	case FuncWriteSingleCoil:
		addr, value, err := ParseWriteSingle(req.Data)
		if err != nil || (value != 0xFF00 && value != 0x0000) {
			return ExceptionPDU(req.Function, ExIllegalDataValue)
		}
		if int(addr) >= len(m.coils) {
			return ExceptionPDU(req.Function, ExIllegalDataAddress)
		}
		m.coils[addr] = value == 0xFF00
		return PDU{Function: req.Function, Data: append([]byte(nil), req.Data...)}

	case FuncWriteMultipleRegs:
		start, values, err := ParseWriteMultiple(req.Data)
		if err != nil || len(values) == 0 {
			return ExceptionPDU(req.Function, ExIllegalDataValue)
		}
		if int(start)+len(values) > len(m.holding) {
			return ExceptionPDU(req.Function, ExIllegalDataAddress)
		}
		copy(m.holding[start:], values)
		resp := make([]byte, 4)
		copy(resp, req.Data[0:4])
		return PDU{Function: req.Function, Data: resp}

	default:
		return ExceptionPDU(req.Function, ExIllegalFunction)
	}
}

// Handler processes a semantic request PDU into a response PDU.
type Handler interface {
	Handle(req PDU) PDU
}

// Server serves Modbus requests over stream connections using a dialect.
type Server struct {
	handler Handler
	dialect Dialect

	mu     sync.Mutex
	lis    net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server over handler speaking dialect.
func NewServer(handler Handler, dialect Dialect) *Server {
	return &Server{handler: handler, dialect: dialect}
}

// Serve accepts connections until the listener fails or Close is called.
// It blocks; run it in a goroutine and pair it with Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("modbus: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn serves a single connection until EOF or a protocol error.
// Dialect authentication failures answer with an illegal-function
// exception in standard framing (leaking nothing about the dialect) and
// keep the connection open.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		if err := conn.Close(); err != nil {
			_ = err // best-effort close; connection is finished either way
		}
	}()
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			return // EOF, timeout or garbage framing: drop the connection
		}
		sem, err := s.dialect.Unwrap(frame.PDU)
		var respPDU PDU
		if err != nil {
			respPDU = ExceptionPDU(frame.PDU.Function, ExIllegalFunction)
		} else {
			respPDU = s.dialect.Wrap(s.handler.Handle(sem))
		}
		out, err := EncodeFrame(Frame{Transaction: frame.Transaction, Unit: frame.Unit, PDU: respPDU})
		if err != nil {
			return
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

var _ Handler = (*MemoryModel)(nil)
