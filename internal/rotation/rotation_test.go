package rotation

import (
	"math"
	"reflect"
	"testing"

	"diversify/internal/exploits"
	"diversify/internal/indicators"
	"diversify/internal/malware"
	"diversify/internal/topology"
)

func testTopo() *topology.Topology {
	return topology.NewTieredSCADA(topology.DefaultTieredSpec())
}

func evalSpec(topo *topology.Topology, spec Spec, reps int, seed uint64) malware.EvalSpec {
	cat := exploits.StuxnetCatalog()
	return malware.EvalSpec{
		Config:  malware.Config{Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile()},
		Horizon: 720, Reps: reps, Seed: seed,
		NewRotator: func() malware.Rotator {
			e, err := NewEngine(spec, topo, cat, malware.StuxnetProfile())
			if err != nil {
				panic(err)
			}
			return e
		},
	}
}

func TestParseSpec(t *testing.T) {
	cases := map[string]Spec{
		"periodic:24":    {Kind: Periodic, Period: 24, Batch: 1, CostPerRotation: 1, Classes: []exploits.Class{exploits.ClassOS}},
		"triggered:48x2": {Kind: Triggered, Period: 48, Batch: 2, CostPerRotation: 1, Classes: []exploits.Class{exploits.ClassOS}},
		"adaptive:72":    {Kind: Adaptive, Period: 72, Batch: 1, CostPerRotation: 1, Classes: []exploits.Class{exploits.ClassOS}},
	}
	for sel, want := range cases {
		got, err := ParseSpec(sel)
		if err != nil {
			t.Fatalf("%q: %v", sel, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: got %+v want %+v", sel, got, want)
		}
		if got.Name() != sel {
			t.Errorf("%q: Name round-trip %q", sel, got.Name())
		}
	}
	// A bare policy name defaults the period to 48 hours.
	bare, err := ParseSpec("triggered")
	if err != nil || bare.Kind != Triggered || bare.Period != 48 {
		t.Fatalf("bare selector: %+v, %v", bare, err)
	}
	for _, bad := range []string{"", "periodic:", "hourly:4", "periodic:x", "periodic:-3", "periodic:24x0", "periodic:24xq"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{
		{},
		{Kind: Periodic},
		{Kind: Periodic, Period: math.NaN()},
		{Kind: Periodic, Period: 24, Downtime: -1},
		{Kind: Periodic, Period: 24, CostPerRotation: -2},
		{Kind: Adaptive, Period: 24, Budget: -1},
		{Kind: Kind(9), Period: 24},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v: expected error", bad)
		}
	}
}

func TestPlannedCost(t *testing.T) {
	periodic := Spec{Kind: Periodic, Period: 100, Batch: 2, CostPerRotation: 3}
	if got := periodic.PlannedCost(720); got != 7*2*3 {
		t.Errorf("periodic planned cost %.1f, want 42", got)
	}
	triggered := Spec{Kind: Triggered, Period: 100, CostPerRotation: 1}
	if got := triggered.PlannedCost(720); got != 7 {
		t.Errorf("triggered planned cost %.1f, want 7 (every poll priced)", got)
	}
	adaptive := Spec{Kind: Adaptive, Period: 100, CostPerRotation: 1, Budget: 5}
	// Base rate 7 waves, capped by the explicit rotation budget.
	if got := adaptive.PlannedCost(720); got != 5 {
		t.Errorf("adaptive planned cost %.1f, want budget cap 5", got)
	}
	// Without an explicit Budget the base-rate figure doubles as the
	// engine's enforced spend cap.
	if got := (Spec{Kind: Adaptive, Period: 100, CostPerRotation: 1}).PlannedCost(720); got != 7 {
		t.Errorf("uncapped adaptive planned cost %.1f, want 7", got)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Kind: Periodic, Period: 24, Batch: 2, CostPerRotation: 1}
	fps := map[uint64]string{base.Fingerprint(): "base"}
	for name, s := range map[string]Spec{
		"kind":   {Kind: Triggered, Period: 24, Batch: 2, CostPerRotation: 1},
		"period": {Kind: Periodic, Period: 48, Batch: 2, CostPerRotation: 1},
		"batch":  {Kind: Periodic, Period: 24, Batch: 3, CostPerRotation: 1},
		"seed":   {Kind: Periodic, Period: 24, Batch: 2, CostPerRotation: 1, Seed: 9},
	} {
		fp := s.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		fps[fp] = name
	}
}

func TestNewEngineValidation(t *testing.T) {
	topo := testTopo()
	cat := exploits.StuxnetCatalog()
	profile := malware.StuxnetProfile()
	if _, err := NewEngine(Spec{}, topo, cat, profile); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// A class no node carries has nothing to rotate.
	if _, err := NewEngine(Spec{Kind: Periodic, Period: 24, Classes: []exploits.Class{exploits.ClassFirewall}}, topo, cat, profile); err == nil {
		t.Fatal("un-carried class accepted")
	}
}

// A periodic engine must actually rotate, and the whole rotated
// evaluation must be byte-identical across worker counts and batch
// sizes — the determinism contract per-policy seeded streams exist for.
func TestPeriodicRotatesDeterministically(t *testing.T) {
	topo := testTopo()
	spec := Spec{Kind: Periodic, Period: 48, Batch: 2, Downtime: 4}
	es := evalSpec(topo, spec, 8, 11)
	es.Workers, es.Batch = 1, 1
	want, err := malware.Evaluate(es)
	if err != nil {
		t.Fatal(err)
	}
	totalRot := 0
	for _, o := range want {
		totalRot += o.Rotations
		if o.RotationCost > spec.PlannedCost(720)+1e-9 {
			t.Fatalf("realized cost %.1f exceeds planned %.1f", o.RotationCost, spec.PlannedCost(720))
		}
	}
	if totalRot == 0 {
		t.Fatal("periodic engine performed no rotations")
	}
	for _, workers := range []int{2, 5} {
		for _, batch := range []int{0, 3} {
			es.Workers, es.Batch = workers, batch
			got, err := malware.Evaluate(es)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d batch=%d: rotated outcomes diverged", workers, batch)
			}
		}
	}
}

// A triggered engine keys on perceived detections: with a threat that
// can never be detected it must not rotate once.
func TestTriggeredNeedsDetections(t *testing.T) {
	topo := testTopo()
	cat := exploits.StuxnetCatalog()
	silent := malware.DuquProfile()
	silent.BeaconDetectBase = 0 // silent C2 and exfiltration: zero detections
	outs, err := malware.Evaluate(malware.EvalSpec{
		Config:  malware.Config{Topo: topo, Catalog: cat, Profile: silent},
		Horizon: 720, Reps: 6, Seed: 5,
		NewRotator: func() malware.Rotator {
			e, err := NewEngine(Spec{Kind: Triggered, Period: 24}, topo, cat, silent)
			if err != nil {
				panic(err)
			}
			return e
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Detections != 0 {
			t.Fatalf("replication %d: silent profile was detected", i)
		}
		if o.Rotations != 0 {
			t.Fatalf("replication %d: triggered engine rotated %d times without a detection", i, o.Rotations)
		}
	}
	// The same triggered engine under the default (noisy) Stuxnet profile
	// must rotate in at least one detected replication.
	noisy, err := malware.Evaluate(evalSpec(topo, Spec{Kind: Triggered, Period: 24}, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	rotated := 0
	for _, o := range noisy {
		rotated += o.Rotations
	}
	if rotated == 0 {
		t.Fatal("triggered engine never rotated under a detectable threat")
	}
}

// The adaptive engine must respect its rotation budget in every
// replication.
func TestAdaptiveRespectsBudget(t *testing.T) {
	topo := testTopo()
	spec := Spec{Kind: Adaptive, Period: 24, Batch: 2, Budget: 6, CostPerRotation: 2}
	outs, err := malware.Evaluate(evalSpec(topo, spec, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	spent := 0.0
	for i, o := range outs {
		if o.RotationCost > spec.Budget+1e-9 {
			t.Fatalf("replication %d: spent %.1f over budget %.1f", i, o.RotationCost, spec.Budget)
		}
		spent += o.RotationCost
	}
	if spent == 0 {
		t.Fatal("adaptive engine never rotated")
	}
}

// The headline dynamic-diversity effect (Chen et al.): rotating the
// monoculture's variants mid-campaign starves the attack — lower mean
// foothold time and more re-infection churn than the static deployment
// under identical replication streams.
func TestRotationShrinksFoothold(t *testing.T) {
	topo := testTopo()
	cat := exploits.StuxnetCatalog()
	static := malware.EvalSpec{
		Config:  malware.Config{Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile()},
		Horizon: 720, Reps: 24, Seed: 2,
	}
	staticOuts, err := malware.Evaluate(static)
	if err != nil {
		t.Fatal(err)
	}
	rotatedOuts, err := malware.Evaluate(evalSpec(topo, Spec{Kind: Periodic, Period: 48, Batch: 3, Downtime: 2}, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	staticFH, err := indicators.FootholdSummary(staticOuts)
	if err != nil {
		t.Fatal(err)
	}
	rotatedFH, err := indicators.FootholdSummary(rotatedOuts)
	if err != nil {
		t.Fatal(err)
	}
	if rotatedFH.Mean >= staticFH.Mean {
		t.Fatalf("rotation did not shrink mean foothold: rotated %.1f vs static %.1f", rotatedFH.Mean, staticFH.Mean)
	}
	if indicators.MeanReinfections(rotatedOuts) == 0 && indicators.MeanReinfections(staticOuts) != 0 {
		t.Fatal("static deployment reported re-infections")
	}
	if rate, err := indicators.ContainmentRate(rotatedOuts, 0.95); err == nil && rate.Point == 0 {
		t.Log("note: rotation never fully contained a compromised replication (acceptable, horizon-limited)")
	}
	for _, o := range staticOuts {
		if o.Rotations != 0 || o.Reinfections != 0 || o.RotationCost != 0 {
			t.Fatal("static outcomes carry rotation measurements")
		}
	}
}
