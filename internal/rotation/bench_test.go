package rotation

import (
	"testing"

	"diversify/internal/exploits"
	"diversify/internal/malware"
	"diversify/internal/rng"
	"diversify/internal/topology"
)

// grid200Campaign builds the 200-substation steady-state pair: one
// reusable campaign and one rotation engine for it.
func grid200Campaign(b *testing.B, spec *Spec) (*malware.Campaign, *Engine) {
	b.Helper()
	topo := topology.NewMeshedGrid(topology.DefaultMeshedGridSpec(200))
	cat := exploits.StuxnetCatalog()
	c, err := malware.NewCampaign(malware.Config{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(), Rand: rng.New(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	if spec == nil {
		return c, nil
	}
	eng, err := NewEngine(*spec, topo, cat, malware.StuxnetProfile())
	if err != nil {
		b.Fatal(err)
	}
	return c, eng
}

// BenchmarkRotatedCampaignGrid measures one steady-state rotated
// replication on the 200-substation grid — the acceptance path: the
// moving-target machinery must ride the same recycled arena/timeline as
// the static campaign, within a handful of allocations per op of the
// static grid:200 baseline (BenchmarkCampaignGrid200).
func BenchmarkRotatedCampaignGrid(b *testing.B) {
	c, eng := grid200Campaign(b, &Spec{Kind: Periodic, Period: 24, Batch: 4, Downtime: 2})
	c.SetRotation(eng)
	r := rng.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seed(uint64(i + 1))
		c.Reset(nil, r)
		if _, err := c.Run(168); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotationOverhead isolates the rotation machinery on the
// reference tiered plant: a steady-state replication with an eager
// periodic engine, against which BenchmarkCampaignReuse (static, same
// plant, in internal/malware) is the baseline.
func BenchmarkRotationOverhead(b *testing.B) {
	topo := topology.NewTieredSCADA(topology.DefaultTieredSpec())
	cat := exploits.StuxnetCatalog()
	c, err := malware.NewCampaign(malware.Config{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(), Rand: rng.New(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(Spec{Kind: Periodic, Period: 24, Batch: 2, Downtime: 2}, topo, cat, malware.StuxnetProfile())
	if err != nil {
		b.Fatal(err)
	}
	c.SetRotation(eng)
	r := rng.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seed(uint64(i + 1))
		c.Reset(nil, r)
		if _, err := c.Run(720); err != nil {
			b.Fatal(err)
		}
	}
}

// The allocation acceptance: a steady-state rotated grid:200
// replication must stay within 10 allocs/op of the static grid:200
// path, and the count must be stable (nothing grows per cycle).
func TestRotatedSteadyStateAllocsGrid200(t *testing.T) {
	if testing.Short() {
		t.Skip("grid:200 alloc measurement in -short mode")
	}
	topo := topology.NewMeshedGrid(topology.DefaultMeshedGridSpec(200))
	cat := exploits.StuxnetCatalog()
	c, err := malware.NewCampaign(malware.Config{
		Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(), Rand: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Spec{Kind: Periodic, Period: 24, Batch: 4, Downtime: 2}, topo, cat, malware.StuxnetProfile())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(0)
	cycle := func() {
		r.Seed(7)
		c.Reset(nil, r)
		if _, err := c.Run(168); err != nil {
			t.Fatal(err)
		}
	}
	measure := func() float64 {
		cycle() // warm-up: grows arena, scratch, overlay buckets
		first := testing.AllocsPerRun(5, cycle)
		second := testing.AllocsPerRun(5, cycle)
		if first != second {
			t.Fatalf("steady-state alloc count drifting (%v then %v)", first, second)
		}
		return first
	}
	c.SetRotation(nil)
	static := measure()
	c.SetRotation(eng)
	rotated := measure()
	t.Logf("grid:200 steady-state allocs/op: static %.0f, rotated %.0f", static, rotated)
	if rotated > static+10 {
		t.Fatalf("rotated replication allocates %.0f/op, more than 10 over the static %.0f/op", rotated, static)
	}
}
