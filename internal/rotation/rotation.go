// Package rotation implements dynamic diversity: moving-target variant
// rotation DURING a live campaign, on top of the static placement the
// rest of the framework optimizes. The paper deploys its diversified
// configuration once; the dynamic-network-diversity literature (Chen et
// al., "Quantifying Cybersecurity Effectiveness of Dynamic Network
// Diversity") shows that reconfiguring variants while the intruder is
// inside dominates static placement on dwell time and re-infection, at
// a rotation cost the defender must budget — the trade-off Li et al.
// frame for ICS diversification.
//
// A Spec describes one rotation schedule; an Engine executes it inside
// a malware.Campaign through the RotationControl hook, as ordinary
// discrete-event ticks on the campaign clock:
//
//	Periodic  — rotate a batch of nodes every Period hours, round-robin
//	            over the candidate set (unconditional hygiene);
//	Triggered — poll the perceived detection count every Period hours
//	            and rotate only when it grew (reactive eviction);
//	Adaptive  — budget-aware: rotates the most critical nodes first,
//	            speeds its clock up while detections accumulate, backs
//	            off when the network is quiet, and stops for good when
//	            its rotation budget is exhausted.
//
// Candidates are ordered by the shared structural screening surrogate
// (malware.CriticalityScores), so reactive policies evict the attacker
// from choke points first. Every engine draw comes from its own
// per-replication seeded stream (Start mixes the replication seed with
// the spec fingerprint), which keeps outcomes byte-identical across
// worker counts and batch sizes and decorrelated from attack sampling.
package rotation

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"diversify/internal/exploits"
	"diversify/internal/malware"
	"diversify/internal/rng"
	"diversify/internal/topology"
)

// ErrBadSpec reports an invalid rotation schedule.
var ErrBadSpec = errors.New("rotation: invalid spec")

// Kind selects the rotation policy.
type Kind int

// Rotation policies.
const (
	// Periodic rotates a batch every Period hours unconditionally.
	Periodic Kind = iota + 1
	// Triggered polls every Period hours and rotates only when the
	// perceived detection count grew since the last poll.
	Triggered
	// Adaptive rotates the highest-criticality nodes first under a
	// rotation budget, halving its interval (floor Period/4) while
	// detections accumulate and stretching it (cap Period*4) when quiet.
	Adaptive
)

func (k Kind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Triggered:
		return "triggered"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is one immutable rotation schedule. The zero value is invalid;
// fill at least Kind and call Validate (ParseSpec and the optimizer do).
type Spec struct {
	Kind Kind
	// Period is the base interval in hours between rotation waves
	// (Periodic), detection polls (Triggered) or clock adaptations
	// (Adaptive).
	Period float64
	// Batch is how many nodes rotate per wave (default 1).
	Batch int
	// Downtime is the per-node reimaging window in hours: a rotating
	// node is cured immediately and unattackable until the window ends
	// (default 0 = instant).
	Downtime float64
	// CostPerRotation prices one node rotation in cost-model units
	// (default 1). The schedule's PlannedCost folds into the placement
	// budget; the realized spend is reported per replication.
	CostPerRotation float64
	// Budget caps the realized rotation spend per replication for the
	// Adaptive policy; 0 defaults the cap to the base-rate spend over the
	// horizon (PlannedCost), so adaptive overclock bursts borrow from its
	// quiet stretches instead of exceeding the planned figure. Other
	// policies ignore it (their wave count is already period-bounded).
	Budget float64
	// Classes are the rotated component classes (default: OS only).
	Classes []exploits.Class
	// Seed decorrelates this schedule's draws from other schedules
	// evaluated under the same replication streams.
	Seed uint64
}

// withDefaults returns the spec with defaulted knobs filled in.
func (s Spec) withDefaults() Spec {
	if s.Batch <= 0 {
		s.Batch = 1
	}
	if s.CostPerRotation <= 0 {
		s.CostPerRotation = 1
	}
	if len(s.Classes) == 0 {
		s.Classes = []exploits.Class{exploits.ClassOS}
	}
	return s
}

// Validate checks the spec for usability.
func (s Spec) Validate() error {
	switch s.Kind {
	case Periodic, Triggered, Adaptive:
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadSpec, int(s.Kind))
	}
	if s.Period <= 0 || math.IsNaN(s.Period) {
		return fmt.Errorf("%w: period %v", ErrBadSpec, s.Period)
	}
	if s.Batch < 0 {
		return fmt.Errorf("%w: batch %d", ErrBadSpec, s.Batch)
	}
	if s.Downtime < 0 || math.IsNaN(s.Downtime) {
		return fmt.Errorf("%w: downtime %v", ErrBadSpec, s.Downtime)
	}
	if s.CostPerRotation < 0 || math.IsNaN(s.CostPerRotation) {
		return fmt.Errorf("%w: cost per rotation %v", ErrBadSpec, s.CostPerRotation)
	}
	if s.Budget < 0 || math.IsNaN(s.Budget) {
		return fmt.Errorf("%w: budget %v", ErrBadSpec, s.Budget)
	}
	return nil
}

// Name renders the schedule compactly ("triggered:48x2"); ParseSpec
// accepts the same shape back.
func (s Spec) Name() string {
	s = s.withDefaults()
	name := fmt.Sprintf("%s:%g", s.Kind, s.Period)
	if s.Batch != 1 {
		name += fmt.Sprintf("x%d", s.Batch)
	}
	return name
}

// ParseSpec parses a CLI schedule selector: "kind", "kind:period" or
// "kind:periodxbatch" — e.g. "triggered", "periodic:24",
// "triggered:48x2". An omitted period defaults to 48 hours. Knobs
// beyond kind, period and batch keep their defaults (set them through
// the Spec API).
func ParseSpec(sel string) (Spec, error) {
	kindStr, rest, hasRest := strings.Cut(sel, ":")
	var spec Spec
	switch kindStr {
	case "periodic":
		spec.Kind = Periodic
	case "triggered":
		spec.Kind = Triggered
	case "adaptive":
		spec.Kind = Adaptive
	default:
		return Spec{}, fmt.Errorf("%w: unknown policy %q (want periodic, triggered or adaptive)", ErrBadSpec, kindStr)
	}
	spec.Period = 48
	if hasRest && rest == "" {
		return Spec{}, fmt.Errorf("%w: %q has a trailing colon; write %q or %q", ErrBadSpec, sel, kindStr, kindStr+":48")
	}
	periodStr, batchStr, hasBatch := "", "", false
	if hasRest {
		periodStr, batchStr, hasBatch = strings.Cut(rest, "x")
		period, err := strconv.ParseFloat(periodStr, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: period %q is not a number", ErrBadSpec, periodStr)
		}
		spec.Period = period
	}
	if hasBatch {
		batch, err := strconv.Atoi(batchStr)
		if err != nil || batch <= 0 {
			return Spec{}, fmt.Errorf("%w: batch %q is not a positive integer", ErrBadSpec, batchStr)
		}
		spec.Batch = batch
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// PlannedCost is the deterministic rotation spend ceiling over one
// replication horizon — the number the placement optimizer folds into
// its budget, computable without simulating anything. Periodic and
// Triggered price every possible wave at the base period (Triggered
// conservatively assumes each poll fires). Adaptive prices the base
// rate too — its engine enforces exactly this figure as its default
// spend cap, so overclocked bursts borrow from quiet stretches — unless
// an explicit Budget caps it lower.
func (s Spec) PlannedCost(horizon float64) float64 {
	s = s.withDefaults()
	if horizon <= 0 {
		return 0
	}
	waves := math.Floor(horizon / s.Period)
	cost := waves * float64(s.Batch) * s.CostPerRotation
	if s.Kind == Adaptive && s.Budget > 0 && s.Budget < cost {
		cost = s.Budget
	}
	return cost
}

// Fingerprint returns a deterministic 64-bit digest of the schedule,
// mixed into candidate fingerprints by the optimizer (so one placement
// paired with two schedules caches as two candidates) and into the
// engine's per-replication seed.
func (s Spec) Fingerprint() uint64 {
	s = s.withDefaults()
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xFF
			h *= fnvPrime
		}
	}
	mix(uint64(s.Kind))
	mix(math.Float64bits(s.Period))
	mix(uint64(s.Batch))
	mix(math.Float64bits(s.Downtime))
	mix(math.Float64bits(s.CostPerRotation))
	mix(math.Float64bits(s.Budget))
	for _, c := range s.Classes {
		mix(uint64(c))
	}
	mix(s.Seed)
	return h
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// target is one rotation candidate with its structural criticality.
type target struct {
	id    topology.NodeID
	score float64
}

// Engine executes one Spec inside one campaign. An Engine belongs to a
// single campaign (worker) at a time — Start resets every mutable field
// for the next replication, so engines are freely reusable across
// Reset+Run cycles but must never be shared across concurrent workers.
type Engine struct {
	spec   Spec
	specFP uint64
	// nodes is the candidate set ordered by criticality descending (the
	// order reactive policies evict in; Periodic round-robins over it).
	nodes []target
	// pools[i] lists the catalog variants of Classes[i], sorted by ID.
	pools [][]exploits.VariantID
	// lastRot[i] is the last virtual time nodes[i] rotated (reactive
	// policies enforce a Period cool-down per node).
	lastRot []float64

	r       rng.Rand
	cursor  int
	spent   float64
	budget  float64 // enforced spend cap this replication (Adaptive; 0 = none)
	lastDet int
	period  float64
}

// NewEngine prepares an engine for one (spec, plant, threat) triple:
// candidates are the nodes that carry at least one rotated class,
// ordered by the structural surrogate. Unlike the placement optimizer —
// which excludes corporate PCs because hardening the attacker's entry
// machines is not a defense the paper considers — rotation includes
// them: reimaging an office PC is the cheapest eviction there is, and
// the dynamic-diversity studies rotate the whole host population. All
// allocation happens here; Start and Tick are allocation-free.
func NewEngine(spec Spec, topo *topology.Topology, cat *exploits.Catalog, profile malware.Profile) (*Engine, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{spec: spec, specFP: spec.Fingerprint()}
	for _, class := range spec.Classes {
		variants := cat.VariantsOf(class)
		if len(variants) < 2 {
			return nil, fmt.Errorf("%w: catalog has %d variant(s) of %v — nothing to rotate to", ErrBadSpec, len(variants), class)
		}
		pool := make([]exploits.VariantID, len(variants))
		for i, v := range variants {
			pool[i] = v.ID
		}
		e.pools = append(e.pools, pool)
	}
	crit := malware.CriticalityScores(topo, profile)
	// Entry nodes get a strong ordering bonus: they are where infected
	// media keep landing, so they are where evictions recover the most
	// dwell — the defender knows the entry kinds (threat intelligence the
	// profile encodes), not the live infection state.
	entry := map[topology.Kind]bool{}
	for _, k := range profile.EntryKinds {
		entry[k] = true
	}
	for _, n := range topo.Nodes() {
		carries := false
		for _, class := range spec.Classes {
			if _, ok := n.Components[class]; ok {
				carries = true
				break
			}
		}
		if carries {
			score := crit[n.ID]
			if entry[n.Kind] {
				score += 2
			}
			e.nodes = append(e.nodes, target{id: n.ID, score: score})
		}
	}
	if len(e.nodes) == 0 {
		return nil, fmt.Errorf("%w: no node carries any of the rotated classes", ErrBadSpec)
	}
	slices.SortFunc(e.nodes, func(a, b target) int {
		if c := cmp.Compare(b.score, a.score); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	e.lastRot = make([]float64, len(e.nodes))
	return e, nil
}

// Start implements malware.Rotator: reset all mutable state for the
// replication and schedule the first tick.
func (e *Engine) Start(rc malware.RotationControl, seed uint64) {
	e.r.Seed(seed ^ e.specFP)
	e.cursor = 0
	e.spent = 0
	e.lastDet = 0
	e.period = e.spec.Period
	e.budget = 0
	if e.spec.Kind == Adaptive {
		// The enforced cap matches PlannedCost exactly: the explicit
		// Budget, or the base-rate spend over this replication's horizon.
		e.budget = e.spec.PlannedCost(rc.Horizon())
	}
	for i := range e.lastRot {
		e.lastRot[i] = math.Inf(-1)
	}
	rc.ScheduleTick(e.period)
}

// Tick implements malware.Rotator: one scheduled policy decision.
//
//diversify:det-root policy decisions replay identically under CRN seeding
func (e *Engine) Tick(rc malware.RotationControl) {
	now := rc.Now()
	switch e.spec.Kind {
	case Periodic:
		e.rotateBatch(rc, now)
		rc.ScheduleTick(e.spec.Period)
	case Triggered:
		if det := rc.Detections(); det > e.lastDet {
			e.lastDet = det
			e.rotateBatch(rc, now)
		}
		rc.ScheduleTick(e.spec.Period)
	case Adaptive:
		if det := rc.Detections(); det > e.lastDet {
			e.lastDet = det
			e.period = math.Max(e.spec.Period/4, e.period/2)
		} else {
			e.period = math.Min(e.spec.Period*4, e.period*1.5)
		}
		e.rotateBatch(rc, now)
		if e.budget > 0 && e.budget-e.spent < e.spec.CostPerRotation {
			return // budget exhausted for good: stop ticking
		}
		rc.ScheduleTick(e.period)
	}
}

// rotateBatch rotates up to Batch candidate nodes at time now. Nodes
// whose classes are all placement-pinned are skipped (their attempt
// still starts a cool-down, so reactive policies do not stall on them);
// the scan gives up after one pass over the candidate set.
func (e *Engine) rotateBatch(rc malware.RotationControl, now float64) {
	rotated := 0
	for tries := 0; rotated < e.spec.Batch && tries < len(e.nodes); tries++ {
		idx := e.nextTarget(now)
		if idx < 0 {
			return
		}
		if e.budget > 0 && e.spent+e.spec.CostPerRotation > e.budget {
			return
		}
		if e.rotateNode(rc, idx, now) {
			rotated++
		}
	}
}

// nextTarget selects the next node to rotate: Periodic round-robins the
// cursor; reactive policies take the most critical node outside its
// Period cool-down (so the same choke point is not thrashed every
// trigger while its neighbors stay stale). Returns -1 when no candidate
// is eligible.
func (e *Engine) nextTarget(now float64) int {
	if e.spec.Kind == Periodic {
		idx := e.cursor
		e.cursor = (e.cursor + 1) % len(e.nodes)
		return idx
	}
	for i := range e.nodes {
		if now-e.lastRot[i] >= e.spec.Period {
			return i
		}
	}
	return -1
}

// rotateNode rotates every spec class the node carries to a uniformly
// drawn different variant, billing CostPerRotation once per node. It
// reports whether anything actually rotated (placement-pinned classes
// refuse); either way the node enters its cool-down.
func (e *Engine) rotateNode(rc malware.RotationControl, idx int, now float64) bool {
	cost := e.spec.CostPerRotation
	id := e.nodes[idx].id
	billed := false
	for ci, class := range e.spec.Classes {
		cur, ok := rc.Variant(id, class)
		if !ok {
			continue
		}
		pool := e.pools[ci]
		// Uniform draw over the pool minus the current variant, without
		// building a filtered slice (Tick stays allocation-free).
		eligible := len(pool)
		for _, v := range pool {
			if v == cur {
				eligible--
			}
		}
		if eligible == 0 {
			continue
		}
		k := 0
		if eligible > 1 {
			k = e.r.Intn(eligible)
		}
		var next exploits.VariantID
		for _, v := range pool {
			if v == cur {
				continue
			}
			if k == 0 {
				next = v
				break
			}
			k--
		}
		bill := 0.0
		if !billed {
			bill = cost
		}
		if rc.Rotate(id, class, next, e.spec.Downtime, bill) && !billed {
			billed = true
			e.spent += cost
		}
	}
	e.lastRot[idx] = now
	return billed
}
