package diversify

import (
	"math"
	"net"
	"testing"
	"time"

	"diversify/internal/des"
	"diversify/internal/diversity"
	"diversify/internal/exploits"
	"diversify/internal/indicators"
	"diversify/internal/malware"
	"diversify/internal/modbus"
	"diversify/internal/physics"
	"diversify/internal/rng"
	"diversify/internal/scada"
	"diversify/internal/scope"
	"diversify/internal/topology"
)

// TestIntegrationRemoteHMIOverTCP drives the full vertical stack: a
// physical cooling plant controlled by a PLC whose register file is
// served over real Modbus/TCP, polled by a remote client — then the
// Stuxnet write path against both protocol dialects.
func TestIntegrationRemoteHMIOverTCP(t *testing.T) {
	sim := des.NewSim()
	proc, err := physics.NewCoolingPlant(physics.DefaultCoolingConfig())
	if err != nil {
		t.Fatal(err)
	}
	plc, err := scada.NewPLC("remote-plc", 8, 4, 1,
		scada.ProportionalCooling([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{4, 5, 6, 7}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 4; z++ {
		if err := plc.SetHolding(z, 30); err != nil {
			t.Fatal(err)
		}
	}
	var sensors []scada.SensorBinding
	var acts []scada.ActuatorBinding
	for z := 0; z < 4; z++ {
		sensors = append(sensors, scada.SensorBinding{SensorIndex: z, PLC: plc, InputReg: z})
		acts = append(acts, scada.ActuatorBinding{PLC: plc, HoldingReg: 4 + z, CmdIndex: z})
	}
	plant, err := scada.NewPlant(sim, rng.New(1), scada.PlantConfig{
		Process: proc, PLCs: []*scada.PLC{plc},
		Sensors: sensors, Actuators: acts,
		StepPeriod: 0.05, PollPeriod: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	plant.Start()
	if err := sim.Run(24); err != nil { // reach thermal steady state
		t.Fatal(err)
	}

	// Serve the PLC's live register file over TCP with the diversified
	// dialect.
	key := []byte("site-42")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := modbus.NewServer(plc.Model, modbus.NewDiversifiedDialect(key))
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	// Legitimate remote HMI (same dialect) reads a believable zone
	// temperature.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hmiClient := modbus.NewClient(conn, modbus.NewDiversifiedDialect(key), 1, 2*time.Second)
	regs, err := hmiClient.ReadInput(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for z, raw := range regs {
		temp := float64(raw) / scada.Scale
		if temp < 20 || temp > 45 {
			t.Fatalf("zone %d temperature over TCP = %v°C, implausible", z, temp)
		}
	}
	// Operator changes a setpoint remotely; the PLC logic must act on it.
	if err := hmiClient.WriteRegister(0, uint16(25*scada.Scale)); err != nil {
		t.Fatal(err)
	}
	if sp, err := plc.Holding(0); err != nil || math.Abs(sp-25) > 0.1 {
		t.Fatalf("remote setpoint did not land: %v %v", sp, err)
	}

	// Attacker with a standard-dialect Stuxnet payload is rejected.
	attConn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	attacker := modbus.NewClient(attConn, modbus.StandardDialect{}, 1, 2*time.Second)
	if err := attacker.WriteRegister(4, 0); err == nil {
		t.Fatal("standard-dialect attack write accepted by diversified endpoint")
	}
	if cmd, err := plc.Holding(4); err != nil || cmd == 0 {
		// Command register must still hold the controller's value, not 0.
		if err != nil {
			t.Fatal(err)
		}
		t.Fatalf("attack overwrote the cooling command: %v", cmd)
	}

	if err := hmiClient.Close(); err != nil {
		t.Fatal(err)
	}
	if err := attacker.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationFormalismConsistency checks that the SAN case-study
// model and the full campaign simulator agree on the *direction* of the
// diversity effect on the same cooling topology.
func TestIntegrationFormalismConsistency(t *testing.T) {
	cs := scope.NewCaseStudy()
	hardenedAssign, err := cs.PlacementAssignment(2, scope.StrategyStrategic, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	const reps = 50
	const horizon = 720.0

	sanPSA := func(assign *diversity.Assignment) float64 {
		outs := des.Replicate(reps, 0, 3, func(rep int, r *rng.Rand) indicators.Outcome {
			out, err := cs.EvaluateSAN(assign, r, horizon)
			if err != nil {
				return indicators.Outcome{}
			}
			return out
		})
		succ := 0
		for _, o := range outs {
			if o.Success {
				succ++
			}
		}
		return float64(succ) / reps
	}
	campaignPSA := func(assign *diversity.Assignment) float64 {
		outs := des.Replicate(reps, 0, 3, func(rep int, r *rng.Rand) indicators.Outcome {
			cfg := malware.Config{Topo: cs.Topo, Catalog: cs.Catalog,
				Profile: malware.StuxnetProfile(), Rand: r}
			if assign != nil {
				cfg.Assign = assign.Func()
			}
			c, err := malware.NewCampaign(cfg)
			if err != nil {
				return indicators.Outcome{}
			}
			out, err := c.Run(horizon)
			if err != nil {
				return indicators.Outcome{}
			}
			return out
		})
		succ := 0
		for _, o := range outs {
			if o.Success {
				succ++
			}
		}
		return float64(succ) / reps
	}

	sanBase, sanHard := sanPSA(nil), sanPSA(hardenedAssign)
	campBase, campHard := campaignPSA(nil), campaignPSA(hardenedAssign)
	if sanHard >= sanBase {
		t.Fatalf("SAN model: hardening did not lower PSA (%v → %v)", sanBase, sanHard)
	}
	if campHard >= campBase {
		t.Fatalf("campaign model: hardening did not lower PSA (%v → %v)", campBase, campHard)
	}
	// Both formalisms should show a LARGE effect, not a marginal one.
	if sanBase-sanHard < 0.3 || campBase-campHard < 0.3 {
		t.Fatalf("formalisms disagree on effect size: SAN %v→%v, campaign %v→%v",
			sanBase, sanHard, campBase, campHard)
	}
}

// TestIntegrationDiversityIndicesTrackCampaign ties the diversity metrics
// to measured security: configurations with higher Simpson index must not
// yield faster attacks on average (rank agreement, not exact calibration).
func TestIntegrationDiversityIndicesTrackCampaign(t *testing.T) {
	cat := exploits.StuxnetCatalog()
	type point struct {
		simpson float64
		tta     float64
	}
	var points []point
	for _, k := range []int{1, 4} {
		topo := topology.NewTieredSCADA(topology.DefaultTieredSpec())
		assign := diversity.NewAssignment()
		if err := diversity.SpreadVariants(topo, assign, cat, exploits.ClassOS, k); err != nil {
			t.Fatal(err)
		}
		profile := diversity.ProfileOf(topo, assign, exploits.ClassOS)
		outs := des.Replicate(60, 0, 17, func(rep int, r *rng.Rand) indicators.Outcome {
			c, err := malware.NewCampaign(malware.Config{
				Topo: topo, Catalog: cat, Profile: malware.StuxnetProfile(),
				Rand: r, Assign: assign.Func(),
			})
			if err != nil {
				return indicators.Outcome{}
			}
			out, err := c.Run(720)
			if err != nil {
				return indicators.Outcome{}
			}
			return out
		})
		tta, err := indicators.TTASummary(outs)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, point{simpson: profile.SimpsonIndex(), tta: tta.Mean})
	}
	if points[1].simpson <= points[0].simpson {
		t.Fatalf("Simpson index did not grow with k: %+v", points)
	}
	if points[1].tta <= points[0].tta {
		t.Fatalf("higher diversity index but faster attack: %+v", points)
	}
}
